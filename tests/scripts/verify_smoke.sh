#!/usr/bin/env bash
# Verify smoke test: `ratsim verify` on the MIX2 pair under RaT must
# find the full host-side mode grid (cycle-skip x scheduler x
# ra-variant, plus the save/restore leg) digest-identical — and, with a
# deliberately seeded single-flip mutation, must detect the divergence
# and bisect it to an exact first divergent cycle.
#
# Usage: verify_smoke.sh /path/to/ratsim
set -u

RATSIM=${1:?usage: verify_smoke.sh /path/to/ratsim}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/ratsim_verify_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

OPTS=(--workload art,gzip --policy RaT
      --measure 4000 --warmup 1000 --prewarm 50000 --digest-window 256)

echo "== clean mode-grid verify (must pass) =="
"$RATSIM" verify "${OPTS[@]}" > "$WORK/clean.log" 2>&1 \
    || fail "clean verify exited non-zero: $(cat "$WORK/clean.log")"
grep -q "verify: mode grid consistent" "$WORK/clean.log" \
    || fail "missing consistency verdict: $(cat "$WORK/clean.log")"

echo "== seeded-mutation verify (must fail with a bisected cycle) =="
"$RATSIM" verify "${OPTS[@]}" --mutate-at 1500 \
    > "$WORK/mutated.log" 2>&1
STATUS=$?
[ "$STATUS" -eq 1 ] \
    || fail "mutated verify must exit 1 (detected), got $STATUS: \
$(cat "$WORK/mutated.log")"
grep -q "seeded mutation detected and bisected to cycle" \
    "$WORK/mutated.log" \
    || fail "mutation not bisected: $(cat "$WORK/mutated.log")"
grep -q "exact first divergent cycle" "$WORK/mutated.log" \
    || fail "missing exact-cycle report: $(cat "$WORK/mutated.log")"
# The bisected cycle must be the mutation point + 1 (the flip lands at
# tick start, so the first cycle whose *post-tick* state differs is the
# next one); both dumps must be present for post-mortem.
grep -Eq "bisected to cycle [0-9]+" "$WORK/mutated.log" \
    || fail "no numeric bisected cycle: $(cat "$WORK/mutated.log")"
grep -q -- "--- reference state at cycle" "$WORK/mutated.log" \
    || fail "missing reference state dump"
grep -q -- "--- divergent state at cycle" "$WORK/mutated.log" \
    || fail "missing divergent state dump"

echo "PASS: mode grid consistent clean, seeded mutation bisected"
