/**
 * @file
 * Campaign engine tests: grid expansion, on-disk result-cache
 * memoization (a warm re-run simulates nothing and returns
 * bit-identical results), parallel-vs-serial equivalence, and
 * key-collision safety.
 */

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "report/result_cache.hh"
#include "report/serialize.hh"
#include "sim/campaign.hh"

namespace rat::sim {
namespace {

/** Tiny windows: the grid runs in well under a second per cell. */
SimConfig
tinyConfig()
{
    SimConfig cfg;
    cfg.prewarmInsts = 5000;
    cfg.warmupCycles = 200;
    cfg.measureCycles = 1000;
    return cfg;
}

CampaignSpec
smallSpec(const std::string &cache_dir)
{
    CampaignSpec spec;
    spec.base = tinyConfig();
    spec.techniques = {icountSpec(), ratSpec()};
    spec.workloads = {Workload::fromPrograms({"art", "mcf"})};
    spec.seedAxis = {1, 2};
    spec.cacheDir = cache_dir;
    return spec;
}

/** Scoped temp dir under the gtest temp root. */
struct TempCacheDir {
    std::filesystem::path path;

    explicit TempCacheDir(const char *name)
        : path(std::filesystem::path(testing::TempDir()) / name)
    {
        std::filesystem::remove_all(path);
    }
    ~TempCacheDir() { std::filesystem::remove_all(path); }
};

std::string
cellsJson(const CampaignOutcome &outcome, const CampaignSpec &spec)
{
    return campaignJson(outcome, spec).dump();
}

TEST(Campaign, ExpandsFullCrossProductInDeterministicOrder)
{
    CampaignSpec spec;
    spec.base = tinyConfig();
    spec.techniques = {icountSpec(), ratSpec()};
    spec.workloads = {Workload::fromPrograms({"art", "mcf"}),
                      Workload::fromPrograms({"swim", "mcf"})};
    spec.regsAxis = {128, 320};
    spec.seedAxis = {1, 2, 3};

    const auto cells = expandCampaign(spec);
    ASSERT_EQ(cells.size(), 2u * 2u * 2u * 3u);

    // Outermost loop is the technique, innermost the seed.
    EXPECT_EQ(cells[0].technique, "ICOUNT");
    EXPECT_EQ(cells[0].workload, "art,mcf");
    EXPECT_EQ(cells[0].regs, 128u);
    EXPECT_EQ(cells[0].seed, 1u);
    EXPECT_EQ(cells[1].seed, 2u);
    EXPECT_EQ(cells[3].regs, 320u);
    EXPECT_EQ(cells.back().technique, "RaT");
    EXPECT_EQ(cells.back().workload, "swim,mcf");
    EXPECT_EQ(cells.back().seed, 3u);

    // The effective config reflects every coordinate.
    EXPECT_EQ(cells[0].config.core.intRegs, 128u);
    EXPECT_EQ(cells[0].config.core.fpRegs, 128u);
    EXPECT_EQ(cells[0].config.core.numThreads, 2u);
    EXPECT_EQ(cells[0].config.seed, 1u);
    EXPECT_EQ(cells.back().config.core.policy, core::PolicyKind::Rat);

    // Every cell has a distinct cache key.
    for (std::size_t i = 0; i < cells.size(); ++i) {
        for (std::size_t j = i + 1; j < cells.size(); ++j)
            EXPECT_NE(cells[i].key, cells[j].key) << i << "," << j;
    }
}

TEST(Campaign, RaVariantAxisExpandsWithDistinctKeys)
{
    CampaignSpec spec;
    spec.base = tinyConfig();
    spec.techniques = {ratSpec()};
    spec.workloads = {Workload::fromPrograms({"art", "mcf"})};
    spec.raVariantAxis = {runahead::RaVariant::Classic,
                          runahead::RaVariant::Capped,
                          runahead::RaVariant::UselessFilter};

    const auto cells = expandCampaign(spec);
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(cells[0].raVariant, "classic");
    EXPECT_EQ(cells[1].raVariant, "capped");
    EXPECT_EQ(cells[2].raVariant, "useless-filter");
    EXPECT_EQ(cells[1].config.core.rat.variant,
              runahead::RaVariant::Capped);

    // The variant is part of the serialized config, so every variant
    // cell gets its own result-cache key.
    EXPECT_NE(cells[0].key, cells[1].key);
    EXPECT_NE(cells[0].key, cells[2].key);
    EXPECT_NE(cells[1].key, cells[2].key);
}

TEST(Campaign, RaVariantAxisCollapsesForNonRunaheadTechniques)
{
    // The engine is inert for ICOUNT, so the axis must not multiply
    // its cells (they would be bit-identical simulations under
    // distinct cache keys).
    CampaignSpec spec;
    spec.base = tinyConfig();
    spec.techniques = {icountSpec(), ratSpec()};
    spec.workloads = {Workload::fromPrograms({"art", "mcf"})};
    spec.raVariantAxis = {runahead::RaVariant::Classic,
                          runahead::RaVariant::Capped,
                          runahead::RaVariant::UselessFilter};

    const auto cells = expandCampaign(spec);
    ASSERT_EQ(cells.size(), 1u + 3u);
    EXPECT_EQ(cells[0].technique, "ICOUNT");
    EXPECT_EQ(cells[0].raVariant, "classic");
    for (std::size_t i = 1; i < cells.size(); ++i)
        EXPECT_EQ(cells[i].technique, "RaT");
}

TEST(Campaign, RaVariantCellsRoundTripThroughCacheBitIdentical)
{
    TempCacheDir dir("ravariant-cache");
    CampaignSpec spec;
    spec.base = tinyConfig();
    spec.techniques = {ratSpec()};
    spec.workloads = {Workload::fromPrograms({"art", "mcf"})};
    spec.raVariantAxis = {runahead::RaVariant::Classic,
                          runahead::RaVariant::Capped,
                          runahead::RaVariant::UselessFilter};
    spec.cacheDir = dir.path.string();

    const CampaignOutcome cold = runCampaign(spec);
    EXPECT_EQ(cold.simulated, 3u);
    const CampaignOutcome warm = runCampaign(spec);
    EXPECT_EQ(warm.simulated, 0u);
    EXPECT_EQ(warm.cacheHits, 3u);
    EXPECT_EQ(cellsJson(warm, spec), cellsJson(cold, spec));

    // The variant knob must actually reach the simulator: capped runs
    // differ from classic on this memory-bound pair.
    EXPECT_NE(report::toJson(cold.cells[0].result).dump(),
              report::toJson(cold.cells[1].result).dump());
}

TEST(Campaign, EmptyAxesCollapseToBaseValues)
{
    CampaignSpec spec;
    spec.base = tinyConfig();
    spec.techniques = {ratSpec()};
    spec.workloads = {Workload::fromPrograms({"art", "mcf"})};
    const auto cells = expandCampaign(spec);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].regs, spec.base.core.intRegs);
    EXPECT_EQ(cells[0].rob, spec.base.core.robEntries);
    EXPECT_EQ(cells[0].measureCycles, spec.base.measureCycles);
    EXPECT_EQ(cells[0].seed, spec.base.seed);
}

TEST(Campaign, WarmCacheRunSimulatesNothingAndIsBitIdentical)
{
    TempCacheDir cache("ratsim_campaign_cache");
    const CampaignSpec spec = smallSpec(cache.path.string());

    const CampaignOutcome cold = runCampaign(spec);
    ASSERT_EQ(cold.cells.size(), 4u);
    EXPECT_EQ(cold.simulated, 4u);
    EXPECT_EQ(cold.cacheHits, 0u);
    for (const CampaignCell &cell : cold.cells) {
        EXPECT_FALSE(cell.fromCache);
        EXPECT_GT(cell.result.cycles, 0u);
    }

    const CampaignOutcome warm = runCampaign(spec);
    EXPECT_EQ(warm.simulated, 0u);
    EXPECT_EQ(warm.cacheHits, 4u);
    for (const CampaignCell &cell : warm.cells)
        EXPECT_TRUE(cell.fromCache);

    // The whole structured report is byte-identical.
    EXPECT_EQ(cellsJson(cold, spec), cellsJson(warm, spec));
}

TEST(Campaign, SerialRunMatchesParallelColdRunBitForBit)
{
    TempCacheDir cache("ratsim_campaign_serial");
    CampaignSpec parallel = smallSpec(cache.path.string());
    parallel.parallelism = 4;

    CampaignSpec serial = smallSpec(""); // uncached, one worker
    serial.parallelism = 1;

    const CampaignOutcome a = runCampaign(parallel);
    const CampaignOutcome b = runCampaign(serial);
    EXPECT_EQ(b.simulated, b.cells.size());
    EXPECT_EQ(cellsJson(a, parallel), cellsJson(b, serial));
}

TEST(Campaign, ExtendedSweepOnlySimulatesNewCells)
{
    TempCacheDir cache("ratsim_campaign_extend");
    CampaignSpec spec = smallSpec(cache.path.string());
    const CampaignOutcome cold = runCampaign(spec);
    EXPECT_EQ(cold.simulated, 4u);

    // Extending the seed axis re-uses the four cached cells.
    spec.seedAxis = {1, 2, 3};
    const CampaignOutcome extended = runCampaign(spec);
    ASSERT_EQ(extended.cells.size(), 6u);
    EXPECT_EQ(extended.cacheHits, 4u);
    EXPECT_EQ(extended.simulated, 2u);
}

TEST(Campaign, DuplicateCellsSimulateOnce)
{
    CampaignSpec spec;
    spec.base = tinyConfig();
    spec.techniques = {icountSpec()};
    spec.workloads = {Workload::fromPrograms({"art", "mcf"}),
                      Workload::fromPrograms({"art", "mcf"})};
    const CampaignOutcome outcome = runCampaign(spec);
    ASSERT_EQ(outcome.cells.size(), 2u);
    EXPECT_EQ(outcome.simulated, 1u);
    EXPECT_EQ(report::toJson(outcome.cells[0].result).dump(),
              report::toJson(outcome.cells[1].result).dump());
}

TEST(ResultCache, CollisionAndCorruptionDegradeToMiss)
{
    TempCacheDir dir("ratsim_result_cache");
    const report::ResultCache cache(dir.path.string());

    SimConfig cfg = tinyConfig();
    const std::vector<std::string> programs = {"art", "mcf"};
    const std::string key = report::ResultCache::keyFor(cfg, programs);

    // Absent cell.
    EXPECT_FALSE(cache.load(key));

    // Store and reload exactly.
    SimResult r;
    r.cycles = 123;
    ThreadResult t;
    t.program = "art";
    t.ipc = 0.5;
    r.threads.push_back(t);
    cache.store(key, r);
    const auto hit = cache.load(key);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->cycles, 123u);
    EXPECT_EQ(hit->threads.at(0).program, "art");

    // A different key hashing to the same file must not be served the
    // stored result: simulate by asking with a modified config.
    cfg.seed = 777;
    const std::string other = report::ResultCache::keyFor(cfg, programs);
    std::filesystem::copy_file(
        dir.path / report::ResultCache::fileNameFor(key),
        dir.path / report::ResultCache::fileNameFor(other));
    EXPECT_FALSE(cache.load(other)); // stored key string mismatches

    // Corrupt cell: unparseable JSON is a miss, not a crash.
    std::ofstream(dir.path / report::ResultCache::fileNameFor(key))
        << "{ not json";
    EXPECT_FALSE(cache.load(key));
}

TEST(ResultCache, DisabledCacheNeverStoresOrLoads)
{
    const report::ResultCache cache("");
    EXPECT_FALSE(cache.enabled());
    SimResult r;
    cache.store("key", r);
    EXPECT_FALSE(cache.load("key"));
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(Workloads, FromProgramsJoinsCanonicalName)
{
    const Workload w = Workload::fromPrograms({"art", "mcf", "swim"});
    EXPECT_EQ(w.name, "art,mcf,swim");
    ASSERT_EQ(w.programs.size(), 3u);
    EXPECT_EQ(w.programs[2], "swim");
    EXPECT_EQ(Workload::fromPrograms({}).name, "");
}

TEST(Workloads, ParseGroupRoundTripsAllGroups)
{
    for (const WorkloadGroup g : allGroups()) {
        const auto parsed = parseGroup(groupName(g));
        ASSERT_TRUE(parsed);
        EXPECT_EQ(*parsed, g);
    }
    EXPECT_FALSE(parseGroup("MEM8"));
    EXPECT_FALSE(parseGroup(""));
}

} // namespace
} // namespace rat::sim
