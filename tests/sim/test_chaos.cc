/**
 * @file
 * Chaos suite: farm runs under deterministic fault injection
 * (RATSIM_FAULT) must produce byte-identical reports, and the farm's
 * retry/quarantine bookkeeping must match *exactly* what the fault
 * schedule predicts.
 *
 * The predictor mirrors the worker's draw order per (cell, attempt):
 *   garbage@subseq0 (progress frame) -> kill -> hang -> slow ->
 *   simulate -> torn-store -> garbage@subseq1 (reply frame)
 * A draw is lethal (the coordinator observes a death and requeues the
 * cell) when the progress or reply frame is garbled or the worker is
 * killed or hung; a hang surfaces as a watchdog timeout only when
 * nothing noisier killed the worker first. tests/common/test_fault.cc
 * pins the injector-side half of this contract
 * (InjectorSubsequenceMatchesWouldFire).
 */

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.hh"
#include "report/serialize.hh"
#include "sim/campaign.hh"
#include "sim/farm.hh"

#ifndef RATSIM_CLI_PATH
#error "RATSIM_CLI_PATH must point at the ratsim binary"
#endif

namespace rat::sim {
namespace {

namespace fs = std::filesystem;

struct TempCacheDir {
    fs::path path;

    explicit TempCacheDir(const char *name)
        : path(fs::path(testing::TempDir()) / name)
    {
        fs::remove_all(path);
    }
    ~TempCacheDir() { fs::remove_all(path); }
};

/** Scoped RATSIM_FAULT: armed for the runs inside the scope, cleanly
 * unset after — later runs in this same test process must not inherit
 * a schedule (FaultInjector::armFromEnv re-reads on every farm run). */
struct FaultEnv {
    explicit FaultEnv(const char *spec)
    {
        setenv("RATSIM_FAULT", spec, 1);
    }
    ~FaultEnv() { unsetenv("RATSIM_FAULT"); }
};

/** 12-cell grid (2 techniques x 6 seeds), small enough that a cell
 * simulates in well under any watchdog timeout used here. */
CampaignSpec
chaosSpec(const std::string &cache_dir)
{
    CampaignSpec spec;
    spec.base.prewarmInsts = 5000;
    spec.base.warmupCycles = 200;
    spec.base.measureCycles = 1000;
    spec.techniques = {icountSpec(), ratSpec()};
    spec.workloads = {Workload::fromPrograms({"art", "mcf"})};
    spec.seedAxis = {1, 2, 3, 4, 5, 6};
    spec.cacheDir = cache_dir;
    return spec;
}

FarmOptions
chaosOptions(unsigned workers, unsigned job_timeout_sec,
             unsigned max_retries)
{
    FarmOptions opt;
    opt.workers = workers;
    opt.workerBinary = RATSIM_CLI_PATH;
    opt.jobTimeoutSec = job_timeout_sec;
    opt.maxRetries = max_retries;
    return opt;
}

std::string
reportJson(const CampaignOutcome &outcome, const CampaignSpec &spec)
{
    return campaignJson(outcome, spec).dump();
}

/** Reference report: the same spec, uncached, in-process — the bytes
 * every chaos run must reproduce. Callers run this outside any
 * FaultEnv scope. */
std::string
referenceJson(const CampaignSpec &spec)
{
    CampaignSpec uncached = spec;
    uncached.cacheDir.clear();
    return reportJson(runCampaign(uncached), uncached);
}

struct ChaosPrediction {
    std::uint64_t deaths = 0;
    std::uint64_t timeouts = 0;
    std::vector<std::size_t> quarantined; ///< lead cell indices
};

/** Replay the fault schedule against every (cell, attempt) the farm
 * will issue and predict its exact death/timeout/quarantine ledger.
 * Valid for a fresh cache with no duplicate cells, where job indices
 * are 0..cells-1 and the attempt number increments once per death. */
ChaosPrediction
predictOutcome(const FaultSchedule &sched, std::size_t cells,
               unsigned max_retries)
{
    ChaosPrediction p;
    for (std::size_t lead = 0; lead < cells; ++lead) {
        for (unsigned attempt = 0;; ++attempt) {
            const bool g0 = sched.wouldFire(FaultKind::GarbageFrame,
                                            lead, attempt, 0);
            const bool kill =
                sched.wouldFire(FaultKind::Kill, lead, attempt, 0);
            const bool hang =
                sched.wouldFire(FaultKind::Hang, lead, attempt, 0);
            const bool g1 = sched.wouldFire(FaultKind::GarbageFrame,
                                            lead, attempt, 1);
            if (!(g0 || kill || hang || g1))
                break; // this attempt survives: the cell lands
            ++p.deaths;
            // A hang is only *seen* as a timeout when the worker was
            // not already dead (kill) or detectably corrupt (garbage
            // progress frame) before wedging.
            p.timeouts += hang && !kill && !g0;
            if (attempt == max_retries) {
                p.quarantined.push_back(lead);
                break;
            }
        }
    }
    return p;
}

TEST(ChaosFarm, KillScheduleMatchesPredictedAccountingExactly)
{
    TempCacheDir cache("chaos_kill");
    const CampaignSpec spec = chaosSpec(cache.path.string());
    const std::string reference = referenceJson(spec);

    const char *fault = "seed=3:kill@p0.3";
    const auto sched = FaultSchedule::parse(fault);
    ASSERT_TRUE(sched);
    const ChaosPrediction pred = predictOutcome(*sched, 12, 10);
    ASSERT_GT(pred.deaths, 0u) << "dead seed: pick another";
    ASSERT_TRUE(pred.quarantined.empty());

    FaultEnv env(fault);
    const FarmOutcome farm =
        runFarm(spec, chaosOptions(3, /*timeout=*/0, /*retries=*/10));
    ASSERT_TRUE(farm.completed) << farm.error;
    EXPECT_EQ(farm.workerDeaths, pred.deaths);
    EXPECT_EQ(farm.jobsRequeued, pred.deaths);
    EXPECT_EQ(farm.workersTimedOut, 0u);
    EXPECT_TRUE(farm.quarantinedCells.empty());
    EXPECT_LE(farm.workersRespawned, pred.deaths);
    EXPECT_EQ(farm.campaign.simulated, 12u);
    EXPECT_EQ(reportJson(farm.campaign, spec), reference);
}

TEST(ChaosFarm, HangsAreClearedByTheWatchdogAndCountedExactly)
{
    TempCacheDir cache("chaos_hang");
    const CampaignSpec spec = chaosSpec(cache.path.string());
    const std::string reference = referenceJson(spec);

    const char *fault = "seed=5:hang@p0.2";
    const auto sched = FaultSchedule::parse(fault);
    ASSERT_TRUE(sched);
    const ChaosPrediction pred = predictOutcome(*sched, 12, 8);
    ASSERT_GT(pred.timeouts, 0u) << "dead seed: pick another";
    ASSERT_LT(pred.timeouts, 8u) << "too slow: pick another seed";
    ASSERT_TRUE(pred.quarantined.empty());

    FaultEnv env(fault);
    const FarmOutcome farm =
        runFarm(spec, chaosOptions(2, /*timeout=*/2, /*retries=*/8));
    ASSERT_TRUE(farm.completed) << farm.error;
    EXPECT_EQ(farm.workersTimedOut, pred.timeouts);
    EXPECT_EQ(farm.workerDeaths, pred.deaths);
    EXPECT_EQ(farm.campaign.simulated, 12u);
    EXPECT_EQ(reportJson(farm.campaign, spec), reference);
}

TEST(ChaosFarm, PoisonedCellIsQuarantinedWithoutStallingTheCampaign)
{
    TempCacheDir cache("chaos_poison");
    const CampaignSpec spec = chaosSpec(cache.path.string());
    const std::string reference = referenceJson(spec);

    // Cell 5 kills its worker on *every* attempt: with --max-retries 2
    // it must die exactly 3 times, then be quarantined — and the other
    // 11 cells must still land in this same run.
    std::string quarantined_key;
    {
        FaultEnv env("seed=1:kill@x5");
        const FarmOutcome farm = runFarm(
            spec, chaosOptions(2, /*timeout=*/0, /*retries=*/2));
        EXPECT_FALSE(farm.completed);
        EXPECT_NE(farm.error.find("quarantined"), std::string::npos)
            << farm.error;
        ASSERT_EQ(farm.quarantinedCells.size(), 1u);
        EXPECT_EQ(farm.quarantinedCells[0], farm.campaign.cells[5].key);
        EXPECT_EQ(farm.workerDeaths, 3u);
        EXPECT_EQ(farm.jobsRequeued, 2u); // 3rd death quarantines
        EXPECT_EQ(farm.campaign.simulated, 11u);
        quarantined_key = farm.quarantinedCells[0];
    }

    // With the fault gone (operator fixed the poison), a plain re-run
    // resumes from the 11 cached cells and completes the grid.
    const FarmOutcome resumed =
        runFarm(spec, chaosOptions(2, /*timeout=*/0, /*retries=*/2));
    ASSERT_TRUE(resumed.completed) << resumed.error;
    EXPECT_TRUE(resumed.quarantinedCells.empty());
    EXPECT_EQ(resumed.campaign.cacheHits, 11u);
    EXPECT_EQ(resumed.campaign.simulated, 1u);
    EXPECT_EQ(resumed.campaign.cells[5].key, quarantined_key);
    EXPECT_EQ(reportJson(resumed.campaign, spec), reference);
}

TEST(ChaosFarm, TornStoresQuarantineOnResumeThenHeal)
{
    TempCacheDir cache("chaos_torn");
    const CampaignSpec spec = chaosSpec(cache.path.string());
    const std::string reference = referenceJson(spec);

    // Run 1: some stores are torn mid-write. The *wire* results are
    // intact, so the run completes byte-identical — the damage is
    // latent in the cache.
    const auto sched = FaultSchedule::parse("seed=9:torn-store@p0.4");
    ASSERT_TRUE(sched);
    std::uint64_t torn = 0;
    for (std::size_t lead = 0; lead < 12; ++lead)
        torn += sched->wouldFire(FaultKind::TornStore, lead, 0, 0);
    ASSERT_GT(torn, 0u) << "dead seed: pick another";
    {
        FaultEnv env("seed=9:torn-store@p0.4");
        const FarmOutcome farm = runFarm(
            spec, chaosOptions(2, /*timeout=*/0, /*retries=*/2));
        ASSERT_TRUE(farm.completed) << farm.error;
        EXPECT_EQ(farm.campaign.simulated, 12u);
        EXPECT_EQ(reportJson(farm.campaign, spec), reference);
    }

    // Run 2 (fault-free): every torn cell fails its checksum, is
    // quarantined to <cell>.bad, and re-simulates exactly once.
    const FarmOutcome healed =
        runFarm(spec, chaosOptions(2, /*timeout=*/0, /*retries=*/2));
    ASSERT_TRUE(healed.completed) << healed.error;
    EXPECT_EQ(healed.campaign.cacheQuarantined, torn);
    EXPECT_EQ(healed.campaign.cacheHits, 12u - torn);
    EXPECT_EQ(healed.campaign.simulated, torn);
    EXPECT_EQ(reportJson(healed.campaign, spec), reference);
    std::uint64_t bad_files = 0;
    for (const auto &e : fs::directory_iterator(cache.path))
        bad_files += e.path().extension() == ".bad";
    EXPECT_EQ(bad_files, torn);

    // Run 3: the cache is fully healed — warm, no quarantines, no
    // workers spawned.
    const FarmOutcome warm =
        runFarm(spec, chaosOptions(2, /*timeout=*/0, /*retries=*/2));
    ASSERT_TRUE(warm.completed) << warm.error;
    EXPECT_EQ(warm.campaign.cacheQuarantined, 0u);
    EXPECT_EQ(warm.campaign.cacheHits, 12u);
    EXPECT_EQ(warm.campaign.simulated, 0u);
    EXPECT_EQ(warm.workersSpawned, 0u);
    EXPECT_EQ(reportJson(warm.campaign, spec), reference);
}

TEST(ChaosFarm, TotalSpawnFailureFallsBackInProcess)
{
    TempCacheDir cache("chaos_spawn");
    const CampaignSpec spec = chaosSpec(cache.path.string());
    const std::string reference = referenceJson(spec);

    FaultEnv env("seed=1:spawn@p1");
    const FarmOutcome farm =
        runFarm(spec, chaosOptions(2, /*timeout=*/0, /*retries=*/2));
    ASSERT_TRUE(farm.completed) << farm.error;
    EXPECT_TRUE(farm.inProcessFallback);
    EXPECT_EQ(farm.workersSpawned, 0u);
    EXPECT_EQ(farm.campaign.simulated, 12u);
    EXPECT_EQ(reportJson(farm.campaign, spec), reference);
}

TEST(ChaosFarm, OneDeadSlotDegradesCapacityNotTheCampaign)
{
    TempCacheDir cache("chaos_slot");
    const CampaignSpec spec = chaosSpec(cache.path.string());
    const std::string reference = referenceJson(spec);

    // The spawn context is (slot, respawn count), so x0 makes slot 0
    // unspawnable forever; slot 1 must carry the whole grid alone.
    FaultEnv env("seed=1:spawn@x0");
    const FarmOutcome farm =
        runFarm(spec, chaosOptions(2, /*timeout=*/0, /*retries=*/2));
    ASSERT_TRUE(farm.completed) << farm.error;
    EXPECT_EQ(farm.workersSpawned, 1u);
    EXPECT_FALSE(farm.inProcessFallback);
    EXPECT_EQ(farm.campaign.simulated, 12u);
    EXPECT_EQ(reportJson(farm.campaign, spec), reference);
}

TEST(ChaosFarm, CombinedScheduleStaysByteIdenticalWithExactLedger)
{
    TempCacheDir cache("chaos_combined");
    const CampaignSpec spec = chaosSpec(cache.path.string());
    const std::string reference = referenceJson(spec);

    // Every fault class at once — the schedule from the issue, on a
    // 12-cell grid. Byte-identity plus an exact death/timeout ledger
    // is the whole point of deterministic chaos.
    const char *fault = "seed=3:kill@p0.15,hang@p0.2,"
                        "garbage-frame@p0.1,torn-store@p0.2,slow@p0.3";
    const auto sched = FaultSchedule::parse(fault);
    ASSERT_TRUE(sched);
    const ChaosPrediction pred = predictOutcome(*sched, 12, 5);
    ASSERT_GT(pred.deaths, 0u) << "dead seed: pick another";
    ASSERT_LT(pred.timeouts, 8u) << "too slow: pick another seed";
    ASSERT_TRUE(pred.quarantined.empty());

    FaultEnv env(fault);
    const FarmOutcome farm =
        runFarm(spec, chaosOptions(3, /*timeout=*/2, /*retries=*/5));
    ASSERT_TRUE(farm.completed) << farm.error;
    EXPECT_EQ(farm.workerDeaths, pred.deaths);
    EXPECT_EQ(farm.workersTimedOut, pred.timeouts);
    EXPECT_EQ(farm.jobsRequeued, pred.deaths);
    EXPECT_TRUE(farm.quarantinedCells.empty());
    EXPECT_EQ(farm.campaign.simulated, 12u);
    EXPECT_EQ(reportJson(farm.campaign, spec), reference);
}

} // namespace
} // namespace rat::sim
