/**
 * @file
 * Round-trip tests for the "ratck2" architectural checkpoint codec
 * (sim/checkpoint.hh): restore-then-run must be digest-identical to
 * run-through at every --digest-window boundary, across the host-side
 * scheduler implementation, cycle skipping and the runahead variants;
 * corrupted blobs must be refused; the file key must share checkpoints
 * across the knobs the functional walk ignores and split them on the
 * knobs it depends on.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.hh"
#include "report/serialize.hh"
#include "runahead/variant.hh"
#include "sim/checkpoint.hh"
#include "sim/simulator.hh"

namespace rat::sim {
namespace {

const std::vector<std::string> kMix = {"art", "mcf"};

/** Short windows with digests at every 500-cycle boundary. */
SimConfig
ckptConfig()
{
    SimConfig cfg;
    cfg.core.numThreads = 2;
    cfg.core.policy = core::PolicyKind::Rat;
    cfg.prewarmInsts = 20000;
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 4000;
    cfg.digestWindow = 500;
    return cfg;
}

/** Encode the functional state of @p cfg at its prewarm position. */
std::string
encodeAt(const SimConfig &cfg)
{
    Simulator walker(cfg, kMix);
    walker.smtCore().prewarm(cfg.prewarmInsts);
    const std::string blob = CheckpointCodec::encode(walker);
    EXPECT_FALSE(blob.empty());
    return blob;
}

/** run() on a restore of @p blob (prewarm replaced by the restore). */
SimResult
restoreAndRun(const SimConfig &cfg, const std::string &blob)
{
    SimConfig restored = cfg;
    restored.prewarmInsts = 0;
    Simulator sim(restored, kMix);
    std::string error;
    const bool ok = CheckpointCodec::restore(sim, blob, &error);
    EXPECT_TRUE(ok) << error;
    return sim.run();
}

void
expectIdentical(const SimResult &through, const SimResult &restored)
{
    // Digest-identical at every window boundary...
    ASSERT_TRUE(through.digest.enabled());
    ASSERT_EQ(through.digest.samples.size(),
              restored.digest.samples.size());
    EXPECT_TRUE(through.digest == restored.digest);
    // ...and bit-identical in the full serialized result.
    EXPECT_EQ(report::toJson(through).dump(),
              report::toJson(restored).dump());
    EXPECT_EQ(through.engine.episodes, restored.engine.episodes);
    EXPECT_EQ(through.engine.executedInRunahead,
              restored.engine.executedInRunahead);
}

TEST(Checkpoint, RestoreMatchesRunThroughAcrossHostKnobGrid)
{
    // One blob serves the whole grid: the scheduler implementation,
    // cycle skipping and the runahead variant are all invisible to the
    // functional walk (and excluded from the file key).
    const std::string blob = encodeAt(ckptConfig());

    for (const bool broadcast : {false, true}) {
        for (const bool skip : {true, false}) {
            for (const runahead::RaVariant variant :
                 {runahead::RaVariant::Classic,
                  runahead::RaVariant::Capped,
                  runahead::RaVariant::UselessFilter}) {
                SimConfig cfg = ckptConfig();
                cfg.core.broadcastScheduler = broadcast;
                cfg.core.cycleSkipping = skip;
                cfg.core.rat.variant = variant;

                Simulator through(cfg, kMix);
                const SimResult a = through.run();
                const SimResult b = restoreAndRun(cfg, blob);
                SCOPED_TRACE(testing::Message()
                             << "broadcast=" << broadcast
                             << " skip=" << skip << " variant="
                             << runahead::raVariantName(variant));
                expectIdentical(a, b);
            }
        }
    }
}

TEST(Checkpoint, RestoreMatchesAcrossPolicies)
{
    const std::string blob = encodeAt(ckptConfig());
    for (const core::PolicyKind policy :
         {core::PolicyKind::Icount, core::PolicyKind::Flush,
          core::PolicyKind::RatDcra}) {
        SimConfig cfg = ckptConfig();
        cfg.core.policy = policy;
        Simulator through(cfg, kMix);
        const SimResult a = through.run();
        const SimResult b = restoreAndRun(cfg, blob);
        expectIdentical(a, b);
    }
}

TEST(Checkpoint, RefusesCorruptBlobs)
{
    const SimConfig cfg = ckptConfig();
    const std::string good = encodeAt(cfg);

    const auto refused = [&](std::string blob) {
        SimConfig restored = cfg;
        restored.prewarmInsts = 0;
        Simulator sim(restored, kMix);
        std::string error;
        const bool ok = CheckpointCodec::restore(sim, blob, &error);
        EXPECT_FALSE(error.empty() || ok);
        return !ok;
    };

    // Bad magic.
    std::string bad = good;
    bad[0] ^= 0x40;
    EXPECT_TRUE(refused(bad));

    // Flipped embedded digest (trailing u64): the restore-time
    // recomputation cannot match it.
    bad = good;
    bad[bad.size() - 4] ^= 0x01;
    EXPECT_TRUE(refused(bad));

    // Truncation.
    EXPECT_TRUE(refused(good.substr(0, good.size() - 9)));
    EXPECT_TRUE(refused(std::string{}));
}

TEST(Checkpoint, EncodeLegalAtFastForwardPoints)
{
    // Encode is defined exactly at functional fast-forward points: a
    // freshly constructed simulator (position 0) and any prewarmed
    // position qualify, and the two positions produce distinct blobs.
    SimConfig cfg = ckptConfig();
    cfg.prewarmInsts = 0;
    Simulator fresh(cfg, kMix);
    const std::string at0 = CheckpointCodec::encode(fresh);
    EXPECT_FALSE(at0.empty());
    EXPECT_NE(at0, encodeAt(ckptConfig()));
}

TEST(Checkpoint, FileKeySharesAcrossTimingKnobs)
{
    const SimConfig base = ckptConfig();
    const std::uint64_t key =
        CheckpointCodec::fileKey(base, kMix, 20000);

    // Policy, runahead variant and ROB size don't touch the walk.
    SimConfig cfg = base;
    cfg.core.policy = core::PolicyKind::Flush;
    EXPECT_EQ(key, CheckpointCodec::fileKey(cfg, kMix, 20000));
    cfg = base;
    cfg.core.rat.variant = runahead::RaVariant::Capped;
    EXPECT_EQ(key, CheckpointCodec::fileKey(cfg, kMix, 20000));
    cfg = base;
    cfg.core.robEntries = 256;
    EXPECT_EQ(key, CheckpointCodec::fileKey(cfg, kMix, 20000));

    // Position, seed, workload and register-file sizes all do.
    EXPECT_NE(key, CheckpointCodec::fileKey(base, kMix, 24096));
    cfg = base;
    cfg.seed = 2;
    EXPECT_NE(key, CheckpointCodec::fileKey(cfg, kMix, 20000));
    EXPECT_NE(key, CheckpointCodec::fileKey(base, {"art", "gzip"},
                                            20000));
    cfg = base;
    cfg.core.intRegs = 256;
    EXPECT_NE(key, CheckpointCodec::fileKey(cfg, kMix, 20000));
}

TEST(Checkpoint, IncrementalWalkEncodesIdentically)
{
    // The registry walker prewarm()s incrementally between sample
    // positions; the blob it captures must equal a one-shot walk's.
    const SimConfig cfg = ckptConfig();
    Simulator oneShot(cfg, kMix);
    oneShot.smtCore().prewarm(20000);
    Simulator stepped(cfg, kMix);
    stepped.smtCore().prewarm(8000);
    stepped.smtCore().prewarm(7000);
    stepped.smtCore().prewarm(5000);
    EXPECT_EQ(CheckpointCodec::encode(oneShot),
              CheckpointCodec::encode(stepped));
}

} // namespace
} // namespace rat::sim
