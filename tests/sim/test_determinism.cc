/**
 * @file
 * Whole-result determinism pins for every scheduling policy.
 *
 * Each policy runs the same MIX2 workload (art,gzip — one memory-bound
 * and one ILP-bound thread, so runahead, flush and resource-control
 * paths all trigger) twice, and the *full* serialized SimResult JSON
 * must be byte-identical between the runs and byte-identical to the
 * golden files committed under tests/data/golden_mix2/. The goldens
 * were captured from the pre-event-driven broadcast scheduler, so this
 * test is the proof that the event-driven wakeup refactor (see
 * DESIGN.md "Event-driven wakeup") changed the simulator's speed and
 * nothing else.
 *
 * Re-capture (only for an *intentional* semantic change; explain it in
 * the same commit):
 *   RATSIM_CAPTURE_GOLDEN_DIR=tests/data/golden_mix2 \
 *     ./build/tests/ratsim_tests --gtest_filter='Determinism.*'
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "policy/factory.hh"
#include "report/serialize.hh"
#include "sim/experiment.hh"
#include "sim/workloads.hh"

namespace rat::sim {
namespace {

/** All nine techniques, in PolicyKind order. */
const std::vector<core::PolicyKind> kAllPolicies = {
    core::PolicyKind::RoundRobin, core::PolicyKind::Icount,
    core::PolicyKind::Stall,      core::PolicyKind::Flush,
    core::PolicyKind::Dcra,       core::PolicyKind::HillClimbing,
    core::PolicyKind::Rat,        core::PolicyKind::RatDcra,
    core::PolicyKind::MlpAware,
};

/** Short windows keep 9 policies x 2 runs affordable in CI. */
SimConfig
determinismConfig()
{
    SimConfig cfg;
    cfg.prewarmInsts = 100000;
    cfg.warmupCycles = 5000;
    cfg.measureCycles = 10000;
    return cfg;
}

std::string
runMix2Json(core::PolicyKind kind)
{
    ExperimentRunner runner(determinismConfig());
    const Workload w = Workload::fromPrograms({"art", "gzip"});
    TechniqueSpec tech;
    tech.label = policy::policyKindName(kind);
    tech.policy = kind;
    const SimResult r = runner.runWorkload(w, tech);
    return report::toJson(r).dump(2) + "\n";
}

std::string
goldenPath(core::PolicyKind kind, const char *dir)
{
    std::string name = policy::policyKindName(kind);
    for (char &c : name) {
        if (c == '+')
            c = '_';
    }
    return std::string(dir) + "/" + name + ".json";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(Determinism, EveryPolicyMix2ByteIdenticalToGolden)
{
    const char *capture = std::getenv("RATSIM_CAPTURE_GOLDEN_DIR");
    for (const core::PolicyKind kind : kAllPolicies) {
        SCOPED_TRACE(policy::policyKindName(kind));
        const std::string first = runMix2Json(kind);

        if (capture) {
            const std::string path = goldenPath(kind, capture);
            std::ofstream out(path, std::ios::binary);
            ASSERT_TRUE(out.is_open()) << "cannot write " << path;
            out << first;
            continue;
        }

        // Run-to-run determinism: a fresh simulator must reproduce the
        // full result byte-for-byte.
        const std::string second = runMix2Json(kind);
        EXPECT_EQ(first, second);

        // Pre-refactor golden: the committed broadcast-scheduler
        // capture must match exactly.
        const std::string path =
            goldenPath(kind, RATSIM_TEST_DATA_DIR "/golden_mix2");
        const std::string golden = slurp(path);
        ASSERT_FALSE(golden.empty()) << "missing golden " << path;
        EXPECT_EQ(first, golden) << "drift against " << path;
    }
}

} // namespace
} // namespace rat::sim
