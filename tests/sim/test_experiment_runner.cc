/**
 * @file
 * Tests of the ExperimentRunner machinery itself (as opposed to the
 * paper-shape integration tests): technique application, baseline
 * caching, group aggregation, and the runParallel helper.
 */

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace rat::sim {
namespace {

SimConfig
quickConfig()
{
    SimConfig cfg;
    cfg.prewarmInsts = 20000;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 2000;
    return cfg;
}

TEST(ExperimentRunner, ConfigForAppliesTechniqueAndThreadCount)
{
    ExperimentRunner runner(quickConfig());
    const TechniqueSpec rat = ratSpec();
    const SimConfig cfg = runner.configFor(rat, 4);
    EXPECT_EQ(cfg.core.policy, core::PolicyKind::Rat);
    EXPECT_EQ(cfg.core.numThreads, 4u);
    // Base windows survive the technique override.
    EXPECT_EQ(cfg.warmupCycles, 500u);
    EXPECT_EQ(cfg.measureCycles, 2000u);

    const SimConfig icfg = runner.configFor(icountSpec(), 2);
    EXPECT_EQ(icfg.core.policy, core::PolicyKind::Icount);
    EXPECT_EQ(icfg.core.numThreads, 2u);
}

TEST(ExperimentRunner, SingleThreadIpcIsCachedAndDeterministic)
{
    ExperimentRunner runner(quickConfig());
    const double first = runner.singleThreadIpc("art");
    const double again = runner.singleThreadIpc("art");
    EXPECT_GT(first, 0.0);
    EXPECT_EQ(first, again); // memoized: bit-identical

    // A fresh runner with the same config reproduces the same value.
    ExperimentRunner other(quickConfig());
    EXPECT_DOUBLE_EQ(other.singleThreadIpc("art"), first);
}

TEST(ExperimentRunner, BaselinesForCoversEveryProgramOnce)
{
    ExperimentRunner runner(quickConfig());
    const Workload w{"art,mcf", {"art", "mcf"}};
    const BaselineIpcMap base = runner.baselinesFor(w);
    ASSERT_EQ(base.size(), 2u);
    EXPECT_GT(base.at("art"), 0.0);
    EXPECT_GT(base.at("mcf"), 0.0);
}

TEST(ExperimentRunner, RunGroupAggregatesEveryWorkload)
{
    ExperimentRunner runner(quickConfig());
    runner.setParallelism(2);
    const WorkloadGroup group = allGroups().front();
    const GroupMetrics gm = runner.runGroup(group, icountSpec());
    EXPECT_EQ(gm.results.size(), workloadsOf(group).size());
    EXPECT_GT(gm.meanThroughput, 0.0);
    // The mean must equal the mean of the per-workload throughputs.
    std::vector<double> per;
    for (const SimResult &r : gm.results)
        per.push_back(throughput(r));
    EXPECT_DOUBLE_EQ(gm.meanThroughput, mean(per));
}

TEST(ExperimentRunner, SetParallelismClampsToAtLeastOne)
{
    ExperimentRunner runner(quickConfig());
    runner.setParallelism(0);
    EXPECT_EQ(runner.parallelism(), 1u);
    runner.setParallelism(8);
    EXPECT_EQ(runner.parallelism(), 8u);
}

TEST(RunParallel, RunsEveryJobExactlyOnce)
{
    std::atomic<int> count{0};
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 64; ++i)
        jobs.push_back([&count] { ++count; });
    runParallel(jobs, 4);
    EXPECT_EQ(count.load(), 64);
}

TEST(RunParallel, ActuallyUsesMultipleWorkers)
{
    std::mutex mu;
    std::set<std::thread::id> seen;
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 32; ++i) {
        jobs.push_back([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            std::lock_guard<std::mutex> lock(mu);
            seen.insert(std::this_thread::get_id());
        });
    }
    runParallel(jobs, 4);
    EXPECT_GE(seen.size(), 2u);
}

TEST(RunParallel, SingleWorkerAndEmptyJobListAreSafe)
{
    std::atomic<int> count{0};
    std::vector<std::function<void()>> jobs{[&count] { ++count; }};
    runParallel(jobs, 1);
    EXPECT_EQ(count.load(), 1);
    jobs.clear();
    runParallel(jobs, 4); // must not hang or crash
}

TEST(RunParallel, ThrowingJobRethrowsInsteadOfTerminating)
{
    // Before the fix, the exception escaped the std::thread body and
    // called std::terminate — the whole test process would abort here.
    std::vector<std::function<void()>> jobs;
    jobs.push_back([] { throw std::runtime_error("cell exploded"); });
    for (int i = 0; i < 8; ++i)
        jobs.push_back([] {});
    EXPECT_THROW(runParallel(jobs, 4), std::runtime_error);

    // The exception message survives the hop across threads.
    try {
        std::vector<std::function<void()>> one{
            [] { throw std::runtime_error("cell exploded"); }};
        runParallel(one, 2);
        FAIL() << "runParallel swallowed the job's exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "cell exploded");
    }
}

TEST(RunParallel, FirstOfSeveralExceptionsWinsAndWorkersJoin)
{
    // Every job throws; exactly one exception must surface, all
    // threads must be joined (ASan/TSan would flag a leaked thread),
    // and the pool must stop handing out work after the failure.
    std::atomic<int> started{0};
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 64; ++i) {
        jobs.push_back([&started] {
            ++started;
            throw std::logic_error("boom");
        });
    }
    EXPECT_THROW(runParallel(jobs, 4), std::logic_error);
    // Failure short-circuits: nowhere near all 64 jobs should start
    // (at most one in-flight job per worker when the flag flipped).
    EXPECT_LE(started.load(), 8);

    // The process is still perfectly usable afterwards.
    std::atomic<int> count{0};
    std::vector<std::function<void()>> ok{[&count] { ++count; }};
    runParallel(ok, 2);
    EXPECT_EQ(count.load(), 1);
}

} // namespace
} // namespace rat::sim
