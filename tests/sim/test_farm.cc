/**
 * @file
 * Farm coordinator tests: sharded multi-process execution must be
 * byte-identical to the in-process campaign runner, resume from the
 * shared cache after a worker is killed, requeue a dead worker's
 * in-flight work onto survivors, and skip process spawning entirely
 * on a fully warm cache.
 *
 * Workers are real fork/execs of the built ratsim binary
 * (RATSIM_CLI_PATH), so these tests cover the wire protocol and the
 * `--farm-worker` entry point end to end.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "report/serialize.hh"
#include "sim/campaign.hh"
#include "sim/farm.hh"

#ifndef RATSIM_CLI_PATH
#error "RATSIM_CLI_PATH must point at the ratsim binary"
#endif

namespace rat::sim {
namespace {

struct TempCacheDir {
    std::filesystem::path path;

    explicit TempCacheDir(const char *name)
        : path(std::filesystem::path(testing::TempDir()) / name)
    {
        std::filesystem::remove_all(path);
    }
    ~TempCacheDir() { std::filesystem::remove_all(path); }
};

/** Scoped env var for the deterministic worker-kill hook. */
struct KillAfter {
    explicit KillAfter(const char *cells)
    {
        setenv("RATSIM_FARM_TEST_KILL_AFTER", cells, 1);
    }
    ~KillAfter() { unsetenv("RATSIM_FARM_TEST_KILL_AFTER"); }
};

CampaignSpec
smallSpec(const std::string &cache_dir)
{
    CampaignSpec spec;
    spec.base.prewarmInsts = 5000;
    spec.base.warmupCycles = 200;
    spec.base.measureCycles = 1000;
    spec.techniques = {icountSpec(), ratSpec()};
    spec.workloads = {Workload::fromPrograms({"art", "mcf"})};
    spec.seedAxis = {1, 2, 3};
    spec.cacheDir = cache_dir;
    return spec;
}

FarmOptions
farmOptions(unsigned workers, unsigned shards = 0)
{
    FarmOptions opt;
    opt.workers = workers;
    opt.shards = shards;
    opt.workerBinary = RATSIM_CLI_PATH;
    return opt;
}

std::string
reportJson(const CampaignOutcome &outcome, const CampaignSpec &spec)
{
    return campaignJson(outcome, spec).dump();
}

TEST(Farm, MatchesInProcessSweepByteForByte)
{
    TempCacheDir cache("farm_identity");
    const CampaignSpec spec = smallSpec(cache.path.string());

    const FarmOutcome farm = runFarm(spec, farmOptions(3));
    ASSERT_TRUE(farm.completed) << farm.error;
    EXPECT_EQ(farm.campaign.simulated, 6u);
    EXPECT_EQ(farm.campaign.failedStores, 0u);
    EXPECT_EQ(farm.workerDeaths, 0u);
    EXPECT_LE(farm.workersSpawned, 3u);

    CampaignSpec uncached = spec;
    uncached.cacheDir.clear();
    const CampaignOutcome sweep = runCampaign(uncached);
    EXPECT_EQ(reportJson(farm.campaign, spec),
              reportJson(sweep, uncached));
    EXPECT_EQ(campaignCsv(farm.campaign).dump(),
              campaignCsv(sweep).dump());
}

TEST(Farm, FullyWarmCacheSpawnsNoWorkers)
{
    TempCacheDir cache("farm_warm");
    const CampaignSpec spec = smallSpec(cache.path.string());
    const FarmOutcome cold = runFarm(spec, farmOptions(2));
    ASSERT_TRUE(cold.completed) << cold.error;

    const FarmOutcome warm = runFarm(spec, farmOptions(2));
    ASSERT_TRUE(warm.completed) << warm.error;
    EXPECT_EQ(warm.workersSpawned, 0u);
    EXPECT_EQ(warm.campaign.simulated, 0u);
    EXPECT_EQ(warm.campaign.cacheHits, 6u);
    EXPECT_EQ(reportJson(warm.campaign, spec),
              reportJson(cold.campaign, spec));
}

TEST(Farm, KilledSoleWorkerAbortsWithPartialCacheThenResumes)
{
    TempCacheDir cache("farm_resume");
    const CampaignSpec spec = smallSpec(cache.path.string());

    // kill -9 the only worker after two cells: the run must fail, but
    // those two cells must already be durable in the shared cache.
    // The worker dies holding its third job, so the coordinator must
    // also requeue that in-flight cell (with no survivor to take it).
    // Respawning is disabled so the abort-and-resume path stays
    // reachable — with it on, the farm would just heal and finish.
    {
        KillAfter kill("2");
        FarmOptions no_respawn = farmOptions(1);
        no_respawn.respawn = false;
        const FarmOutcome crashed = runFarm(spec, no_respawn);
        EXPECT_FALSE(crashed.completed);
        EXPECT_FALSE(crashed.error.empty());
        EXPECT_EQ(crashed.workerDeaths, 1u);
        EXPECT_EQ(crashed.jobsRequeued, 1u);
        EXPECT_EQ(crashed.campaign.simulated, 2u);
    }

    // The resume simulates only the four missing cells...
    const FarmOutcome resumed = runFarm(spec, farmOptions(2));
    ASSERT_TRUE(resumed.completed) << resumed.error;
    EXPECT_EQ(resumed.campaign.cacheHits, 2u);
    EXPECT_EQ(resumed.campaign.simulated, 4u);

    // ...and the merged report is still byte-identical to a clean
    // single-process run of the same spec.
    CampaignSpec uncached = spec;
    uncached.cacheDir.clear();
    const CampaignOutcome sweep = runCampaign(uncached);
    EXPECT_EQ(reportJson(resumed.campaign, spec),
              reportJson(sweep, uncached));
}

TEST(Farm, SurvivorsDrainAKilledWorkersShards)
{
    TempCacheDir cache("farm_requeue");
    // A wider grid than the other tests: worker 0 dies on receipt of
    // its second job, and enough work must remain that it is always
    // fed one (12 cells across 2 workers).
    CampaignSpec spec = smallSpec(cache.path.string());
    spec.seedAxis = {1, 2, 3, 4, 5, 6};

    // Worker 0 dies holding an in-flight cell; worker 1 must pick up
    // the requeued cell plus the orphaned shards, and the campaign
    // still completes in one run.
    KillAfter kill("1");
    const FarmOutcome farm = runFarm(spec, farmOptions(2));
    ASSERT_TRUE(farm.completed) << farm.error;
    EXPECT_EQ(farm.workerDeaths, 1u);
    EXPECT_GE(farm.jobsRequeued, 1u);
    EXPECT_EQ(farm.campaign.simulated, 12u);

    CampaignSpec uncached = spec;
    uncached.cacheDir.clear();
    const CampaignOutcome sweep = runCampaign(uncached);
    EXPECT_EQ(reportJson(farm.campaign, spec),
              reportJson(sweep, uncached));
}

TEST(Farm, RespawnRefillsAKilledSlotAndCompletes)
{
    TempCacheDir cache("farm_respawn");
    const CampaignSpec spec = smallSpec(cache.path.string());

    // The sole worker dies holding its third job. With respawning on
    // (the default) the slot is refilled after backoff — the respawned
    // process does not inherit the kill hook, which models a single
    // operator kill -9 — and the campaign completes in one run.
    KillAfter kill("2");
    const FarmOutcome farm = runFarm(spec, farmOptions(1));
    ASSERT_TRUE(farm.completed) << farm.error;
    EXPECT_EQ(farm.workerDeaths, 1u);
    EXPECT_EQ(farm.workersRespawned, 1u);
    EXPECT_EQ(farm.jobsRequeued, 1u);
    EXPECT_EQ(farm.campaign.simulated, 6u);
    EXPECT_TRUE(farm.quarantinedCells.empty());

    CampaignSpec uncached = spec;
    uncached.cacheDir.clear();
    const CampaignOutcome sweep = runCampaign(uncached);
    EXPECT_EQ(reportJson(farm.campaign, spec),
              reportJson(sweep, uncached));
}

TEST(Farm, WorksWithoutACacheDirectory)
{
    // No cache: results only travel the wire. Still byte-identical.
    const CampaignSpec spec = smallSpec("");
    const FarmOutcome farm = runFarm(spec, farmOptions(2, 3));
    ASSERT_TRUE(farm.completed) << farm.error;
    EXPECT_EQ(farm.shardCount, 3u);
    EXPECT_EQ(farm.campaign.simulated, 6u);
    EXPECT_EQ(farm.campaign.failedStores, 0u);

    const CampaignOutcome sweep = runCampaign(spec);
    EXPECT_EQ(reportJson(farm.campaign, spec), reportJson(sweep, spec));
}

TEST(Farm, DuplicateCellsSimulateOnceAcrossProcesses)
{
    CampaignSpec spec = smallSpec("");
    spec.workloads = {Workload::fromPrograms({"art", "mcf"}),
                      Workload::fromPrograms({"art", "mcf"})};
    spec.techniques = {icountSpec()};
    spec.seedAxis = {1};
    const FarmOutcome farm = runFarm(spec, farmOptions(2));
    ASSERT_TRUE(farm.completed) << farm.error;
    ASSERT_EQ(farm.campaign.cells.size(), 2u);
    EXPECT_EQ(farm.campaign.simulated, 1u); // deduped before sharding
    EXPECT_EQ(report::toJson(farm.campaign.cells[0].result).dump(),
              report::toJson(farm.campaign.cells[1].result).dump());
}

TEST(Farm, FailedStoresAreCountedNotHidden)
{
    // Cache dir under a regular file: workers simulate fine but every
    // store fails; the farm must finish and report the failures.
    TempCacheDir dir("farm_badcache");
    std::filesystem::create_directories(dir.path);
    std::ofstream(dir.path / "blocker") << "x";

    CampaignSpec spec = smallSpec((dir.path / "blocker" / "c").string());
    spec.techniques = {icountSpec()};
    spec.seedAxis = {1};
    const FarmOutcome farm = runFarm(spec, farmOptions(1));
    ASSERT_TRUE(farm.completed) << farm.error;
    EXPECT_EQ(farm.campaign.simulated, 1u);
    EXPECT_EQ(farm.campaign.failedStores, 1u);
}

} // namespace
} // namespace rat::sim
