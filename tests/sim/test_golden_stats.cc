/**
 * @file
 * Golden-stats regression pins: the seeded art,mcf pair under RaT and
 * ICOUNT at the default seed (1) must reproduce these exact counters.
 *
 * Purpose: perf refactors must not silently change simulation
 * semantics. Every pinned number is derived from deterministic integer
 * simulation state, so any drift means behavior changed, not noise. If
 * a change is *intentional* (e.g. a modelling fix), re-capture the
 * values with the harness below and update the constants in the same
 * commit, explaining the semantic change.
 *
 * Re-capture: run the art,mcf workload at measureCycles=20000 via
 * ExperimentRunner::runWorkload(ratSpec()/icountSpec()) and print the
 * counters (the CLI equivalent:
 * `ratsim --workload art,mcf --policy RaT --measure 20000`).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/metrics.hh"

namespace rat::sim {
namespace {

SimResult
runArtMcf(const TechniqueSpec &tech)
{
    SimConfig cfg; // defaults: seed 1, 20k warmup, 1M prewarm insts
    cfg.measureCycles = 20000;
    ExperimentRunner runner(cfg);
    Workload w;
    w.name = "art,mcf";
    w.programs = {"art", "mcf"};
    return runner.runWorkload(w, tech);
}

TEST(GoldenStats, RatOnArtMcfSeed1)
{
    const SimResult r = runArtMcf(ratSpec());
    ASSERT_EQ(r.threads.size(), 2u);
    EXPECT_EQ(r.cycles, 20000u);

    const ThreadResult &art = r.threads[0];
    EXPECT_EQ(art.program, "art");
    EXPECT_EQ(art.core.committedInsts, 14046u);
    EXPECT_EQ(art.core.runaheadEntries, 39u);
    EXPECT_EQ(art.core.runaheadCycles, 15216u);

    const ThreadResult &mcf = r.threads[1];
    EXPECT_EQ(mcf.program, "mcf");
    EXPECT_EQ(mcf.core.committedInsts, 1089u);
    EXPECT_EQ(mcf.core.runaheadEntries, 49u);
    EXPECT_EQ(mcf.core.runaheadCycles, 17936u);

    // IPC and throughput are exact functions of the counters above.
    EXPECT_DOUBLE_EQ(art.ipc, 14046.0 / 20000.0);
    EXPECT_DOUBLE_EQ(mcf.ipc, 1089.0 / 20000.0);
    EXPECT_DOUBLE_EQ(r.throughputEq1(), (14046.0 + 1089.0) / 2 / 20000.0);
    EXPECT_DOUBLE_EQ(r.totalIpc(), (14046.0 + 1089.0) / 20000.0);
}

TEST(GoldenStats, IcountOnArtMcfSeed1)
{
    const SimResult r = runArtMcf(icountSpec());
    ASSERT_EQ(r.threads.size(), 2u);
    EXPECT_EQ(r.cycles, 20000u);

    const ThreadResult &art = r.threads[0];
    EXPECT_EQ(art.program, "art");
    EXPECT_EQ(art.core.committedInsts, 3829u);
    EXPECT_EQ(art.core.runaheadEntries, 0u);
    EXPECT_EQ(art.core.runaheadCycles, 0u);

    const ThreadResult &mcf = r.threads[1];
    EXPECT_EQ(mcf.program, "mcf");
    EXPECT_EQ(mcf.core.committedInsts, 1165u);
    EXPECT_EQ(mcf.core.runaheadEntries, 0u);
    EXPECT_EQ(mcf.core.runaheadCycles, 0u);

    EXPECT_DOUBLE_EQ(r.throughputEq1(), (3829.0 + 1165.0) / 2 / 20000.0);
}

SimResult
runMem4(const TechniqueSpec &tech)
{
    SimConfig cfg; // defaults: seed 1, 20k warmup, 1M prewarm insts
    cfg.measureCycles = 20000;
    ExperimentRunner runner(cfg);
    // First MEM4 workload of Table 2: four memory-bound threads.
    Workload w;
    w.name = "art,mcf,swim,twolf";
    w.programs = {"art", "mcf", "swim", "twolf"};
    return runner.runWorkload(w, tech);
}

TEST(GoldenStats, RatOnMem4QuadSeed1)
{
    // 4-thread pin: guards the multi-thread semantics (shared ROB/IQ
    // arbitration across four contexts) the 2-thread pins cannot see.
    const SimResult r = runMem4(ratSpec());
    ASSERT_EQ(r.threads.size(), 4u);
    EXPECT_EQ(r.cycles, 20000u);

    const ThreadResult &art = r.threads[0];
    EXPECT_EQ(art.program, "art");
    EXPECT_EQ(art.core.committedInsts, 10176u);
    EXPECT_EQ(art.core.runaheadEntries, 37u);
    EXPECT_EQ(art.core.runaheadCycles, 13102u);

    const ThreadResult &mcf = r.threads[1];
    EXPECT_EQ(mcf.program, "mcf");
    EXPECT_EQ(mcf.core.committedInsts, 1039u);
    EXPECT_EQ(mcf.core.runaheadEntries, 47u);
    EXPECT_EQ(mcf.core.runaheadCycles, 17206u);

    const ThreadResult &swim = r.threads[2];
    EXPECT_EQ(swim.program, "swim");
    EXPECT_EQ(swim.core.committedInsts, 14818u);
    EXPECT_EQ(swim.core.runaheadEntries, 32u);
    EXPECT_EQ(swim.core.runaheadCycles, 11714u);

    const ThreadResult &twolf = r.threads[3];
    EXPECT_EQ(twolf.program, "twolf");
    EXPECT_EQ(twolf.core.committedInsts, 3019u);
    EXPECT_EQ(twolf.core.runaheadEntries, 47u);
    EXPECT_EQ(twolf.core.runaheadCycles, 15621u);

    EXPECT_DOUBLE_EQ(
        r.throughputEq1(),
        (10176.0 + 1039.0 + 14818.0 + 3019.0) / 4 / 20000.0);
}

TEST(GoldenStats, IcountOnMem4QuadSeed1)
{
    const SimResult r = runMem4(icountSpec());
    ASSERT_EQ(r.threads.size(), 4u);
    EXPECT_EQ(r.cycles, 20000u);
    EXPECT_EQ(r.threads[0].core.committedInsts, 2002u);
    EXPECT_EQ(r.threads[1].core.committedInsts, 1195u);
    EXPECT_EQ(r.threads[2].core.committedInsts, 2296u);
    EXPECT_EQ(r.threads[3].core.committedInsts, 1771u);
    for (const ThreadResult &t : r.threads) {
        EXPECT_EQ(t.core.runaheadEntries, 0u);
        EXPECT_EQ(t.core.runaheadCycles, 0u);
    }
}

TEST(GoldenStats, RatBeatsIcountOnMemoryBoundPair)
{
    // The paper's headline claim on this pair, as a coarse invariant on
    // top of the exact pins: runahead must raise throughput.
    const SimResult rat = runArtMcf(ratSpec());
    const SimResult icount = runArtMcf(icountSpec());
    EXPECT_GT(rat.throughputEq1(), 1.5 * icount.throughputEq1());
}

} // namespace
} // namespace rat::sim
