/**
 * @file
 * Measurement-methodology tests: the fixed-window continuous-execution
 * substitute for FAME [19] must represent all threads, be deterministic,
 * and be independent of harness parallelism.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace rat::sim {
namespace {

SimConfig
quick()
{
    SimConfig cfg;
    cfg.prewarmInsts = 150000;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 10000;
    return cfg;
}

TEST(Methodology, EveryThreadIsMeasuredOverTheFullWindow)
{
    Simulator s(quick(), {"art", "gzip"});
    const SimResult r = s.run();
    for (const ThreadResult &t : r.threads) {
        // FAME property: no thread's measurement ends early.
        EXPECT_EQ(t.core.normalCycles + t.core.runaheadCycles, r.cycles)
            << t.program;
    }
}

TEST(Methodology, ParallelAndSerialGroupRunsAgree)
{
    ExperimentRunner serial(quick());
    serial.setParallelism(1);
    ExperimentRunner parallel(quick());
    parallel.setParallelism(8);

    const GroupMetrics a =
        serial.runGroup(WorkloadGroup::MEM2, ratSpec());
    const GroupMetrics b =
        parallel.runGroup(WorkloadGroup::MEM2, ratSpec());

    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].committedTotal(),
                  b.results[i].committedTotal())
            << i;
    }
    EXPECT_DOUBLE_EQ(a.meanThroughput, b.meanThroughput);
}

TEST(Methodology, LongerWindowsConvergeTowardStableThroughput)
{
    SimConfig short_cfg = quick();
    short_cfg.measureCycles = 8000;
    SimConfig long_cfg = quick();
    long_cfg.measureCycles = 64000;

    Simulator s1(short_cfg, {"gzip", "bzip2"});
    Simulator s2(long_cfg, {"gzip", "bzip2"});
    const double t1 = s1.run().throughputEq1();
    const double t2 = s2.run().throughputEq1();
    // Statistically stationary traces: windows within ~30% of each other.
    EXPECT_NEAR(t1, t2, 0.3 * t2);
}

TEST(Methodology, WarmupIsExcludedFromMeasurement)
{
    // With and without timed warm-up, measured cycles equal the window.
    SimConfig no_warm = quick();
    no_warm.warmupCycles = 0;
    Simulator s(no_warm, {"gzip"});
    const SimResult r = s.run();
    EXPECT_EQ(r.cycles, no_warm.measureCycles);
}

TEST(Methodology, SeedsGiveIndependentButComparableRuns)
{
    std::vector<double> throughputs;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SimConfig cfg = quick();
        cfg.seed = seed;
        Simulator s(cfg, {"art", "gzip"});
        throughputs.push_back(s.run().throughputEq1());
    }
    // All runs in a sane, mutually consistent band.
    for (double t : throughputs) {
        EXPECT_GT(t, 0.2 * throughputs[0]);
        EXPECT_LT(t, 5.0 * throughputs[0]);
    }
}

} // namespace
} // namespace rat::sim
