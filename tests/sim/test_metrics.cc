/** @file Tests for throughput / fairness / ED^2 metrics. */

#include <gtest/gtest.h>

#include "sim/metrics.hh"

namespace rat::sim {
namespace {

SimResult
makeResult(std::vector<std::pair<std::string, double>> ipcs, Cycle cycles)
{
    SimResult r;
    r.cycles = cycles;
    for (auto &[prog, ipc] : ipcs) {
        ThreadResult t;
        t.program = prog;
        t.ipc = ipc;
        t.core.committedInsts =
            static_cast<std::uint64_t>(ipc * static_cast<double>(cycles));
        t.core.executedInsts = t.core.committedInsts;
        r.threads.push_back(t);
    }
    return r;
}

TEST(Metrics, ThroughputIsEq1Average)
{
    const SimResult r = makeResult({{"a", 2.0}, {"b", 1.0}}, 1000);
    EXPECT_DOUBLE_EQ(throughput(r), 1.5);
    EXPECT_DOUBLE_EQ(r.totalIpc(), 3.0);
}

TEST(Metrics, FairnessIsHarmonicMeanOfSpeedups)
{
    const SimResult r = makeResult({{"a", 1.0}, {"b", 1.0}}, 1000);
    const BaselineIpcMap base = {{"a", 2.0}, {"b", 2.0}};
    // Each thread runs at half its single-thread speed: fairness 0.5.
    EXPECT_DOUBLE_EQ(fairness(r, base), 0.5);
}

TEST(Metrics, FairnessPunishesImbalance)
{
    const BaselineIpcMap base = {{"a", 2.0}, {"b", 2.0}};
    const SimResult balanced = makeResult({{"a", 1.0}, {"b", 1.0}}, 1000);
    const SimResult skewed = makeResult({{"a", 1.9}, {"b", 0.1}}, 1000);
    EXPECT_GT(fairness(balanced, base), fairness(skewed, base));
}

TEST(Metrics, FairnessZeroWhenThreadStarved)
{
    const SimResult r = makeResult({{"a", 0.0}, {"b", 1.0}}, 1000);
    const BaselineIpcMap base = {{"a", 2.0}, {"b", 2.0}};
    EXPECT_DOUBLE_EQ(fairness(r, base), 0.0);
}

TEST(MetricsDeathTest, FairnessMissingBaselineIsFatal)
{
    const SimResult r = makeResult({{"a", 1.0}}, 1000);
    EXPECT_EXIT(fairness(r, BaselineIpcMap{}),
                ::testing::ExitedWithCode(1), "no single-thread baseline");
}

TEST(Metrics, Ed2ScalesWithExecutedWork)
{
    SimResult cheap = makeResult({{"a", 1.0}}, 1000);
    SimResult wasteful = cheap;
    wasteful.threads[0].core.executedInsts *= 2; // same IPC, more work
    EXPECT_DOUBLE_EQ(ed2(wasteful), 2.0 * ed2(cheap));
}

TEST(Metrics, Ed2PunishesSlowdownQuadratically)
{
    const SimResult fast = makeResult({{"a", 2.0}}, 1000);
    const SimResult slow = makeResult({{"a", 1.0}}, 1000);
    // Same energy-per-instruction rate but half the executed count;
    // CPI doubles: ED^2 = (N/2) * (2*cpi)^2 = 2 * N * cpi^2.
    EXPECT_NEAR(ed2(slow) / ed2(fast), 2.0, 1e-9);
}

TEST(Metrics, MeanHelper)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

} // namespace
} // namespace rat::sim
