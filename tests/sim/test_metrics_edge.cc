/**
 * @file
 * Edge-case tests for the report-facing metrics: degenerate groups
 * (empty, single-thread) and zero-IPC threads must yield finite,
 * well-defined values — never a division by zero or a NaN that would
 * poison a JSON report or a sweep-cache cell.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"
#include "sim/metrics.hh"

namespace rat::sim {
namespace {

SimResult
makeResult(std::vector<std::pair<std::string, double>> ipcs, Cycle cycles)
{
    SimResult r;
    r.cycles = cycles;
    for (auto &[prog, ipc] : ipcs) {
        ThreadResult t;
        t.program = prog;
        t.ipc = ipc;
        t.core.committedInsts =
            static_cast<std::uint64_t>(ipc * static_cast<double>(cycles));
        t.core.executedInsts = t.core.committedInsts;
        r.threads.push_back(t);
    }
    return r;
}

TEST(MetricsEdge, HarmonicMeanHandlesDegenerateSets)
{
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({0.0, 1.0}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({-1.0, 1.0}), 0.0);
    // A single positive ratio is its own harmonic mean.
    EXPECT_DOUBLE_EQ(harmonicMean({0.75}), 0.75);
    EXPECT_DOUBLE_EQ(harmonicMean({2.0, 2.0}), 2.0);
}

TEST(MetricsEdge, EmptyResultYieldsFiniteZeroMetrics)
{
    const SimResult r = makeResult({}, 1000);
    EXPECT_DOUBLE_EQ(throughput(r), 0.0);
    EXPECT_DOUBLE_EQ(r.totalIpc(), 0.0);
    EXPECT_DOUBLE_EQ(fairness(r, BaselineIpcMap{}), 0.0);
    EXPECT_DOUBLE_EQ(ed2(r), 0.0);
    EXPECT_TRUE(std::isfinite(throughput(r)));
    EXPECT_TRUE(std::isfinite(ed2(r)));
}

TEST(MetricsEdge, ZeroIpcThreadDoesNotPoisonGroupMetrics)
{
    // A starved thread: every metric must stay finite, and fairness
    // (harmonic mean of speedups) collapses to 0 rather than dividing
    // by the zero IPC.
    const SimResult r = makeResult({{"a", 0.0}, {"b", 1.5}}, 1000);
    const BaselineIpcMap base = {{"a", 2.0}, {"b", 2.0}};
    EXPECT_DOUBLE_EQ(fairness(r, base), 0.0);
    EXPECT_DOUBLE_EQ(throughput(r), 0.75);
    EXPECT_TRUE(std::isfinite(ed2(r)));
    EXPECT_GT(ed2(r), 0.0);
}

TEST(MetricsEdge, SingleThreadGroupIsWellDefined)
{
    const SimResult r = makeResult({{"a", 1.0}}, 1000);
    const BaselineIpcMap base = {{"a", 2.0}};
    EXPECT_DOUBLE_EQ(throughput(r), 1.0);
    EXPECT_DOUBLE_EQ(fairness(r, base), 0.5);
    EXPECT_TRUE(std::isfinite(ed2(r)));
}

TEST(MetricsEdge, AllZeroIpcResultKeepsEd2Finite)
{
    const SimResult r = makeResult({{"a", 0.0}, {"b", 0.0}}, 1000);
    EXPECT_DOUBLE_EQ(throughput(r), 0.0);
    EXPECT_DOUBLE_EQ(ed2(r), 0.0); // zero throughput short-circuits
    EXPECT_TRUE(std::isfinite(ed2(r)));
}

TEST(MetricsEdge, MeanOfEmptySetIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_TRUE(std::isfinite(mean({})));
}

} // namespace
} // namespace rat::sim
