/**
 * @file
 * Tests for sampled simulation (sim/sampled.hh): the degenerate
 * single-phase configuration is bit-exact, per-sample cells merge to
 * the whole-run extrapolation (the campaign/farm path), sampled
 * configurations and results serialize behind the `sampled` gate with
 * distinct cache keys, and the pinned operating point meets the
 * accuracy / detailed-work-reduction contract.
 */

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.hh"
#include "report/serialize.hh"
#include "sim/metrics.hh"
#include "sim/sampled.hh"
#include "sim/simulator.hh"

namespace rat::sim {
namespace {

const std::vector<std::string> kMix = {"art", "gzip"};

/** Scheduling policies of the full paper sweep, in report order. */
const std::vector<core::PolicyKind> kAllPolicies = {
    core::PolicyKind::RoundRobin, core::PolicyKind::Icount,
    core::PolicyKind::Stall,      core::PolicyKind::Flush,
    core::PolicyKind::Dcra,       core::PolicyKind::HillClimbing,
    core::PolicyKind::Rat,        core::PolicyKind::RatDcra,
    core::PolicyKind::MlpAware,
};

SimConfig
baseConfig()
{
    SimConfig cfg;
    cfg.core.numThreads = 2;
    cfg.prewarmInsts = 50000;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 20000;
    return cfg;
}

TEST(Sampled, DegenerateSinglePhaseIsExact)
{
    // One phase over one window, with the per-sample windows equal to
    // the full run's: the "sampled" run restores the post-prewarm
    // checkpoint and then executes exactly what the exact run
    // executes. Results must be bit-identical — the strongest possible
    // statement of restore fidelity.
    SimConfig cfg = baseConfig();
    cfg.sampled = true;
    cfg.samplePhases = 1;
    cfg.phaseSpanWindows = 1;
    cfg.phaseWindow = 1024;
    cfg.sampleWarmupCycles = cfg.warmupCycles;
    cfg.sampleMeasureCycles = cfg.measureCycles;

    SimConfig exact = baseConfig();
    Simulator sim(exact, kMix);
    const SimResult full = sim.run();
    const SimResult sampled = simulateCell(cfg, kMix);

    ASSERT_EQ(full.threads.size(), sampled.threads.size());
    for (std::size_t t = 0; t < full.threads.size(); ++t) {
        EXPECT_EQ(full.threads[t].ipc, sampled.threads[t].ipc);
        EXPECT_EQ(full.threads[t].core.committedInsts,
                  sampled.threads[t].core.committedInsts);
        EXPECT_EQ(full.threads[t].mem.l2DemandMisses,
                  sampled.threads[t].mem.l2DemandMisses);
    }
    EXPECT_TRUE(sampled.sampled.enabled);
    EXPECT_TRUE(sampled.sampled.merged);
    EXPECT_EQ(sampled.sampled.phases, 1u);
    // A single sample has zero dispersion: the error estimate reports
    // the degenerate case as exact.
    EXPECT_EQ(sampled.sampled.ipcError, 0.0);
    EXPECT_EQ(sampled.sampled.hmeanError, 0.0);
}

TEST(Sampled, PerSampleCellsMergeToWholeRun)
{
    // The campaign/farm path runs each sample as an independent cell
    // (cfg.sampleIndex >= 0) and merges afterwards; it must reproduce
    // the one-shot whole-run extrapolation bit-for-bit.
    SimConfig cfg = baseConfig();
    cfg.sampled = true;
    cfg.samplePhases = 4;
    cfg.phaseWindow = 2048;
    cfg.phaseSpanWindows = 24;
    cfg.sampleWarmupCycles = 500;
    cfg.sampleMeasureCycles = 2000;

    const SimResult oneShot = simulateCell(cfg, kMix);

    const trace::PhaseProfile &plan = samplePlanFor(cfg, kMix);
    std::vector<SimResult> cells;
    for (std::size_t i = 0; i < plan.samples.size(); ++i) {
        SimConfig cell = cfg;
        cell.sampleIndex = static_cast<int>(i);
        cells.push_back(simulateCell(cell, kMix));
        EXPECT_TRUE(cells.back().sampled.enabled);
        EXPECT_FALSE(cells.back().sampled.merged);
        EXPECT_EQ(cells.back().sampled.weight,
                  plan.samples[i].weight);
    }
    const SimResult merged = mergeSampledResults(cfg, kMix, cells);

    EXPECT_EQ(report::toJson(oneShot).dump(),
              report::toJson(merged).dump());
}

TEST(Sampled, ConfigSerializationIsGatedAndDistinct)
{
    // Exact-mode configs serialize without any sampled block — cache
    // keys and goldens predate sampling and must stay byte-identical —
    // even when sampled tuning fields are (meaninglessly) customized.
    SimConfig exact = baseConfig();
    SimConfig tuned = baseConfig();
    tuned.samplePhases = 16;
    tuned.phaseWindow = 512;
    const std::string exactDump = report::toJson(exact).dump();
    EXPECT_EQ(exactDump, report::toJson(tuned).dump());
    EXPECT_EQ(exactDump.find("sampled"), std::string::npos);

    // Sampled configs get their own keys, distinct per tuning knob and
    // per sample index (each cell caches separately).
    SimConfig s = baseConfig();
    s.sampled = true;
    const std::string sDump = report::toJson(s).dump();
    EXPECT_NE(sDump, exactDump);
    SimConfig s2 = s;
    s2.samplePhases = 8;
    EXPECT_NE(sDump, report::toJson(s2).dump());
    SimConfig s3 = s;
    s3.sampleIndex = 0;
    EXPECT_NE(sDump, report::toJson(s3).dump());

    // Round-trip: a sampled config survives dump -> parse -> dump.
    SimConfig parsed;
    ASSERT_TRUE(report::fromJson(report::toJson(s3), parsed));
    EXPECT_TRUE(parsed.sampled);
    EXPECT_EQ(parsed.sampleIndex, 0);
    EXPECT_EQ(report::toJson(parsed).dump(), report::toJson(s3).dump());
}

/**
 * The pinned operating point of the sampled-simulation contract
 * (bench/perf_sampled.cc pins the same numbers in CI): MIX2 mcf,eon at
 * seed 6, 4 phases of 8192-inst windows over a 48-window span, 2k+
 * 23.25k detailed cycles per sample against a 5k + 500k-cycle full
 * window. Detailed work: 4 x 25250 = 101000 cycles vs 505000 — an
 * exactly 5x reduction — at a measured worst-policy hmean-IPC error of
 * 0.80% (STALL). Everything here is deterministic (no host randomness
 * anywhere in the pipeline), so the 2% bound is a regression fence
 * with a 2.5x margin, not a statistical hope.
 */
SimConfig
pinnedOperatingPoint()
{
    SimConfig cfg;
    cfg.core.numThreads = 2;
    cfg.seed = 6;
    cfg.prewarmInsts = 100000;
    cfg.warmupCycles = 5000;
    cfg.measureCycles = 500000;
    cfg.sampled = true;
    cfg.samplePhases = 4;
    cfg.phaseWindow = 8192;
    cfg.phaseSpanWindows = 48;
    cfg.sampleWarmupCycles = 2000;
    cfg.sampleMeasureCycles = 23250;
    return cfg;
}

TEST(Sampled, PinnedOperatingPointMeetsErrorBound)
{
    const std::vector<std::string> mix = {"mcf", "eon"};
    const SimConfig base = pinnedOperatingPoint();

    // The deterministic >=5x detailed-work reduction: per-sample
    // detailed cycles vs the full warmup + measured window.
    const trace::PhaseProfile &plan = samplePlanFor(base, mix);
    const std::uint64_t detailed =
        plan.samples.size() *
        (base.sampleWarmupCycles + base.sampleMeasureCycles);
    EXPECT_LE(detailed * 5, base.warmupCycles + base.measureCycles);

    double worst = 0.0;
    for (const core::PolicyKind policy : kAllPolicies) {
        SimConfig sampledCfg = base;
        sampledCfg.core.policy = policy;
        SimConfig fullCfg = sampledCfg;
        fullCfg.sampled = false;

        Simulator full(fullCfg, mix);
        const double fullHmean = hmeanIpc(full.run());
        const double sampledHmean =
            hmeanIpc(simulateCell(sampledCfg, mix));
        ASSERT_GT(fullHmean, 0.0);
        const double errPct =
            100.0 * std::abs(sampledHmean - fullHmean) / fullHmean;
        EXPECT_LE(errPct, 2.0)
            << core::policyName(policy) << ": sampled " << sampledHmean
            << " vs full " << fullHmean;
        worst = std::max(worst, errPct);
    }
    // Keep the headline honest: if accuracy regresses past the
    // measured 0.80% but stays under the contract, this still trips so
    // the regression is looked at rather than silently eroding margin.
    EXPECT_LE(worst, 1.5);
}

TEST(Sampled, ResultSerializationRoundTrips)
{
    SimConfig cfg = baseConfig();
    cfg.sampled = true;
    cfg.samplePhases = 2;
    cfg.phaseSpanWindows = 8;
    cfg.phaseWindow = 1024;
    cfg.sampleWarmupCycles = 500;
    cfg.sampleMeasureCycles = 1500;
    const SimResult merged = simulateCell(cfg, kMix);
    ASSERT_TRUE(merged.sampled.enabled && merged.sampled.merged);

    SimResult parsed;
    ASSERT_TRUE(report::fromJson(report::toJson(merged), parsed));
    EXPECT_TRUE(parsed.sampled.enabled);
    EXPECT_TRUE(parsed.sampled.merged);
    EXPECT_EQ(parsed.sampled.phases, merged.sampled.phases);
    EXPECT_EQ(parsed.sampled.totalWindows, merged.sampled.totalWindows);
    EXPECT_EQ(report::toJson(parsed).dump(),
              report::toJson(merged).dump());

    // Exact-mode results still serialize without the block.
    Simulator sim(baseConfig(), kMix);
    const SimResult full = sim.run();
    EXPECT_EQ(report::toJson(full).dump().find("\"sampled\""),
              std::string::npos);
}

} // namespace
} // namespace rat::sim
