/** @file Tests for the Simulator wrapper and ExperimentRunner. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace rat::sim {
namespace {

SimConfig
quickConfig()
{
    SimConfig cfg;
    cfg.warmupCycles = 3000;
    cfg.measureCycles = 12000;
    return cfg;
}

TEST(Simulator, RunsAndReportsPerThread)
{
    SimConfig cfg = quickConfig();
    Simulator sim(cfg, {"gzip", "art"});
    const SimResult r = sim.run();
    EXPECT_EQ(r.cycles, cfg.measureCycles);
    ASSERT_EQ(r.threads.size(), 2u);
    EXPECT_EQ(r.threads[0].program, "gzip");
    EXPECT_GT(r.threads[0].ipc, 0.0);
    EXPECT_GT(r.threads[1].ipc, 0.0);
    EXPECT_GT(r.totalIpc(), r.throughputEq1()); // n=2: total = 2 * eq1
}

TEST(Simulator, MemProgramHasHigherMpki)
{
    SimConfig cfg = quickConfig();
    Simulator ilp(cfg, {"gzip"});
    Simulator mem_bound(cfg, {"art"});
    const auto r_ilp = ilp.run();
    const auto r_mem = mem_bound.run();
    EXPECT_LT(r_ilp.threads[0].l2Mpki, r_mem.threads[0].l2Mpki);
}

TEST(Simulator, SeedChangesResultsSlightly)
{
    SimConfig a = quickConfig();
    SimConfig b = quickConfig();
    b.seed = 999;
    Simulator sa(a, {"gzip"});
    Simulator sb(b, {"gzip"});
    const auto ra = sa.run();
    const auto rb = sb.run();
    // Different trace instances, same statistics: close but not equal.
    EXPECT_NE(ra.threads[0].core.committedInsts,
              rb.threads[0].core.committedInsts);
    EXPECT_NEAR(ra.threads[0].ipc, rb.threads[0].ipc,
                0.5 * ra.threads[0].ipc);
}

TEST(Simulator, DeterministicForSameConfig)
{
    SimConfig cfg = quickConfig();
    Simulator a(cfg, {"mcf", "gzip"});
    Simulator b(cfg, {"mcf", "gzip"});
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.threads[0].core.committedInsts,
              rb.threads[0].core.committedInsts);
    EXPECT_EQ(ra.threads[1].core.committedInsts,
              rb.threads[1].core.committedInsts);
}

TEST(ExperimentRunner, BaselineCacheIsStable)
{
    ExperimentRunner runner(quickConfig());
    const double a = runner.singleThreadIpc("gzip");
    const double b = runner.singleThreadIpc("gzip");
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.3);
}

TEST(ExperimentRunner, IlpBaselineBeatsMemBaseline)
{
    ExperimentRunner runner(quickConfig());
    EXPECT_GT(runner.singleThreadIpc("gzip"),
              3.0 * runner.singleThreadIpc("mcf"));
}

TEST(ExperimentRunner, RunWorkloadHonorsTechnique)
{
    ExperimentRunner runner(quickConfig());
    const Workload w{"art,mcf", {"art", "mcf"}};
    const SimResult icount = runner.runWorkload(w, icountSpec());
    const SimResult rat = runner.runWorkload(w, ratSpec());
    EXPECT_GT(rat.totalIpc(), 0.0);
    EXPECT_GT(icount.totalIpc(), 0.0);
    // RaT must beat plain ICOUNT on a MEM workload (the headline).
    EXPECT_GT(rat.totalIpc(), icount.totalIpc());
}

TEST(ExperimentRunner, ParallelGroupRunMatchesShape)
{
    ExperimentRunner runner(quickConfig());
    runner.setParallelism(4);
    const GroupMetrics gm =
        runner.runGroup(WorkloadGroup::ILP2, icountSpec());
    EXPECT_EQ(gm.results.size(), 10u);
    EXPECT_GT(gm.meanThroughput, 0.0);
    EXPECT_GT(gm.meanFairness, 0.0);
    EXPECT_GT(gm.meanEd2, 0.0);
}

TEST(RunParallel, ExecutesEveryJobOnce)
{
    std::vector<int> hits(37, 0);
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 37; ++i)
        jobs.emplace_back([&hits, i] { ++hits[i]; });
    runParallel(jobs, 8);
    for (int i = 0; i < 37; ++i)
        EXPECT_EQ(hits[i], 1) << i;
}

} // namespace
} // namespace rat::sim
