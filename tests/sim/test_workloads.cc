/** @file Tests for the Table 2 workload definitions. */

#include <gtest/gtest.h>

#include "sim/workloads.hh"
#include "trace/profile.hh"

namespace rat::sim {
namespace {

TEST(Workloads, GroupCountsMatchTable2)
{
    EXPECT_EQ(workloadsOf(WorkloadGroup::ILP2).size(), 10u);
    EXPECT_EQ(workloadsOf(WorkloadGroup::MIX2).size(), 10u);
    EXPECT_EQ(workloadsOf(WorkloadGroup::MEM2).size(), 10u);
    EXPECT_EQ(workloadsOf(WorkloadGroup::ILP4).size(), 8u);
    EXPECT_EQ(workloadsOf(WorkloadGroup::MIX4).size(), 8u);
    EXPECT_EQ(workloadsOf(WorkloadGroup::MEM4).size(), 8u);
}

TEST(Workloads, ThreadCountsMatchGroup)
{
    for (const WorkloadGroup g : allGroups()) {
        for (const Workload &w : workloadsOf(g))
            EXPECT_EQ(w.programs.size(), groupThreads(g)) << w.name;
    }
}

TEST(Workloads, AllProgramsHaveProfiles)
{
    for (const std::string &p : allPrograms())
        EXPECT_TRUE(trace::isSpec2000(p)) << p;
}

TEST(Workloads, SpecificEntriesFromPaper)
{
    const auto &mem2 = workloadsOf(WorkloadGroup::MEM2);
    EXPECT_EQ(mem2[1].name, "art,mcf");
    const auto &ilp4 = workloadsOf(WorkloadGroup::ILP4);
    EXPECT_EQ(ilp4[0].name, "apsi,eon,fma3d,gcc");
    const auto &mem4 = workloadsOf(WorkloadGroup::MEM4);
    EXPECT_EQ(mem4[0].name, "art,mcf,swim,twolf");
}

TEST(Workloads, GroupNamesRoundTrip)
{
    EXPECT_STREQ(groupName(WorkloadGroup::ILP2), "ILP2");
    EXPECT_STREQ(groupName(WorkloadGroup::MEM4), "MEM4");
    EXPECT_EQ(allGroups().size(), 6u);
}

} // namespace
} // namespace rat::sim
