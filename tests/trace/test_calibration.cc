/**
 * @file
 * Calibration property tests: every modelled SPEC2000 program must land
 * in its Table 2 class when characterized by the paper's methodology
 * (single-threaded L2 miss rate on the Table 1 processor).
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "trace/profile.hh"

namespace rat::trace {
namespace {

struct Characterization {
    double ipc;
    double l2Mpki;
};

Characterization
characterize(const std::string &program)
{
    sim::SimConfig cfg;
    cfg.prewarmInsts = 400000;
    cfg.warmupCycles = 3000;
    cfg.measureCycles = 25000;
    sim::Simulator s(cfg, {program});
    const sim::SimResult r = s.run();
    return {r.threads[0].ipc, r.threads[0].l2Mpki};
}

class MemClassPrograms : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MemClassPrograms, IsMemoryBound)
{
    const Characterization c = characterize(GetParam());
    EXPECT_GT(c.l2Mpki, 6.0) << GetParam();
    EXPECT_LT(c.ipc, 1.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Table2Mem, MemClassPrograms,
                         ::testing::Values("mcf", "art", "swim", "twolf",
                                           "vpr", "parser", "equake",
                                           "lucas", "applu", "ammp"));

class IlpClassPrograms : public ::testing::TestWithParam<const char *>
{
};

TEST_P(IlpClassPrograms, IsComputeBound)
{
    const Characterization c = characterize(GetParam());
    EXPECT_LT(c.l2Mpki, 4.0) << GetParam();
    EXPECT_GT(c.ipc, 0.8) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Table2Ilp, IlpClassPrograms,
                         ::testing::Values("gzip", "bzip2", "gcc",
                                           "crafty", "eon", "gap", "perl",
                                           "vortex", "mesa", "fma3d",
                                           "apsi", "wupwise", "mgrid",
                                           "galgel"));

TEST(Calibration, ExtremesAreOrdered)
{
    // mcf must be the slowest program and far below any ILP program.
    const Characterization mcf = characterize("mcf");
    const Characterization mesa = characterize("mesa");
    EXPECT_LT(mcf.ipc, 0.15);
    EXPECT_GT(mesa.ipc, 10.0 * mcf.ipc);
}

TEST(Calibration, ChasersSerializeMoreThanStreamers)
{
    // Equal-MPKI streamers should still run faster than chasers because
    // their misses overlap; compare miss-cost-per-instruction.
    const Characterization swim = characterize("swim");
    const Characterization mcf = characterize("mcf");
    // swim has *more* misses but *higher* IPC: overlapping misses.
    EXPECT_GT(swim.l2Mpki, mcf.l2Mpki * 0.8);
    EXPECT_GT(swim.ipc, 3.0 * mcf.ipc);
}

} // namespace
} // namespace rat::trace
