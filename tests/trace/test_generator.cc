/** @file Unit and property tests for the synthetic trace generator. */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "trace/generator.hh"
#include "trace/profile.hh"

namespace rat::trace {
namespace {

constexpr Addr kBase = Addr{1} << 40;

TEST(Generator, PureFunctionOfIndex)
{
    const TraceGenerator gen(spec2000("gcc"), 42, kBase);
    for (InstSeq i = 0; i < 2000; i += 17) {
        const MicroOp a = gen.at(i);
        const MicroOp b = gen.at(i);
        EXPECT_EQ(a.op, b.op);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.effAddr, b.effAddr);
        EXPECT_EQ(a.taken, b.taken);
        EXPECT_EQ(a.dst, b.dst);
    }
}

TEST(Generator, SeedsChangeTheStream)
{
    const TraceGenerator a(spec2000("gcc"), 1, kBase);
    const TraceGenerator b(spec2000("gcc"), 2, kBase);
    unsigned same = 0;
    for (InstSeq i = 0; i < 1000; ++i)
        same += (a.at(i).op == b.at(i).op);
    EXPECT_LT(same, 900u); // streams must differ substantially
}

TEST(Generator, InstructionMixMatchesProfile)
{
    const BenchmarkProfile &p = spec2000("gzip");
    const TraceGenerator gen(p, 7, kBase);
    const InstSeq n = 200000;
    std::map<OpClass, unsigned> counts;
    for (InstSeq i = 0; i < n; ++i)
        ++counts[gen.at(i).op];

    const double loads =
        static_cast<double>(counts[OpClass::Load] + counts[OpClass::FpLoad]);
    const double stores = static_cast<double>(counts[OpClass::Store] +
                                              counts[OpClass::FpStore]);
    const double branches = static_cast<double>(counts[OpClass::Branch]);
    EXPECT_NEAR(loads / n, p.fLoad, 0.02);
    EXPECT_NEAR(stores / n, p.fStore, 0.02);
    EXPECT_NEAR(branches / n, p.fBranch, 0.02);
}

TEST(Generator, ChaseLoadsDependOnPreviousChaseLoad)
{
    const BenchmarkProfile &p = spec2000("mcf");
    ASSERT_GT(p.chasePeriod, 0u);
    const TraceGenerator gen(p, 3, kBase);
    // Start at 2*period: the instruction at index `period` is the first
    // chase load, so it is the first valid "previous" producer.
    for (InstSeq i = 2 * p.chasePeriod; i < 200 * p.chasePeriod;
         i += p.chasePeriod) {
        const MicroOp chase = gen.at(i);
        ASSERT_EQ(chase.op, OpClass::Load) << i;
        const MicroOp prev = gen.at(i - p.chasePeriod);
        ASSERT_TRUE(prev.hasDst);
        // The chase load's address register is the previous chase
        // load's destination: the dependence that serializes misses.
        EXPECT_EQ(chase.srcInt[0], prev.dst);
    }
}

TEST(Generator, PcLoopsLocallyWithinAPhase)
{
    const BenchmarkProfile &p = spec2000("gcc");
    const TraceGenerator gen(p, 5, kBase);
    std::set<Addr> pcs;
    const InstSeq n = std::min<InstSeq>(p.phaseInsts, 8000);
    for (InstSeq i = 0; i < n; ++i) {
        const Addr pc = gen.at(i).pc;
        EXPECT_EQ(pc % 4, 0u);
        EXPECT_GE(pc, kBase);
        pcs.insert(pc);
    }
    // Within one phase the PC iterates a hot inner loop: the distinct
    // PC count is bounded by the loop size, far below the instruction
    // count (this is what keeps the L1I hit rate realistic).
    EXPECT_LE(pcs.size(), p.innerLoopBytes / 4 + 16);
    EXPECT_GE(pcs.size(), std::min<std::size_t>(n, 16));
}

TEST(Generator, PcPhasesCoverMoreCodeOverTime)
{
    const BenchmarkProfile &p = spec2000("gcc");
    const TraceGenerator gen(p, 5, kBase);
    std::set<Addr> first_phase, many_phases;
    for (InstSeq i = 0; i < 2000; ++i)
        first_phase.insert(gen.at(i).pc);
    for (InstSeq i = 0; i < 2000; ++i)
        many_phases.insert(gen.at(i * (p.phaseInsts + 1)).pc);
    EXPECT_GT(many_phases.size(), first_phase.size());
}

TEST(Generator, MemoryOpsHaveAlignedAddressesInPrivateSpace)
{
    const TraceGenerator gen(spec2000("swim"), 9, kBase);
    for (InstSeq i = 0; i < 50000; ++i) {
        const MicroOp op = gen.at(i);
        if (isMemOp(op.op)) {
            EXPECT_EQ(op.effAddr % 8, 0u);
            EXPECT_GE(op.effAddr, kBase);
        }
    }
}

TEST(Generator, StreamProgramTouchesManyDistinctLines)
{
    const TraceGenerator gen(spec2000("art"), 11, kBase);
    std::set<Addr> lines;
    for (InstSeq i = 0; i < 100000; ++i) {
        const MicroOp op = gen.at(i);
        if (isLoadOp(op.op))
            lines.insert(op.effAddr >> 6);
    }
    // A streaming benchmark sweeps far more lines than fit in L1 (1024).
    EXPECT_GT(lines.size(), 2000u);
}

TEST(Generator, HotProgramReusesASmallLineSet)
{
    const BenchmarkProfile &p = spec2000("eon");
    const TraceGenerator gen(p, 13, kBase);
    std::map<Addr, unsigned> line_counts;
    unsigned mem_ops = 0;
    for (InstSeq i = 0; i < 100000; ++i) {
        const MicroOp op = gen.at(i);
        if (isMemOp(op.op)) {
            ++line_counts[op.effAddr >> 6];
            ++mem_ops;
        }
    }
    // Count accesses landing in the hot set (lines covering hotBytes).
    const unsigned hot_lines = p.hotBytes / 64;
    std::vector<unsigned> counts;
    for (const auto &[line, c] : line_counts)
        counts.push_back(c);
    std::sort(counts.rbegin(), counts.rend());
    std::uint64_t top = 0;
    for (unsigned i = 0; i < hot_lines && i < counts.size(); ++i)
        top += counts[i];
    EXPECT_GT(static_cast<double>(top) / mem_ops, 0.85);
}

TEST(Generator, BranchOutcomesAreDeterministicPerIndex)
{
    const TraceGenerator gen(spec2000("crafty"), 15, kBase);
    unsigned taken = 0, branches = 0;
    for (InstSeq i = 0; i < 100000; ++i) {
        const MicroOp op = gen.at(i);
        if (op.op == OpClass::Branch) {
            ++branches;
            taken += op.taken;
            EXPECT_EQ(op.taken, gen.at(i).taken);
            EXPECT_NE(op.target, 0u);
        }
    }
    ASSERT_GT(branches, 1000u);
    const double taken_rate = static_cast<double>(taken) / branches;
    EXPECT_GT(taken_rate, 0.2);
    EXPECT_LT(taken_rate, 0.8);
}

TEST(Generator, RegistersStayInRange)
{
    const TraceGenerator gen(spec2000("fma3d"), 17, kBase);
    for (InstSeq i = 0; i < 20000; ++i) {
        const MicroOp op = gen.at(i);
        if (op.hasDst) {
            EXPECT_GE(op.dst, 1);
            EXPECT_LT(op.dst, 31);
        }
        for (unsigned s = 0; s < op.numSrcInt; ++s)
            EXPECT_LT(op.srcInt[s], 32);
        for (unsigned s = 0; s < op.numSrcFp; ++s)
            EXPECT_LT(op.srcFp[s], 32);
    }
}

/** Property sweep: every profile generates self-consistent streams. */
class GeneratorAllPrograms
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GeneratorAllPrograms, StreamIsWellFormed)
{
    const BenchmarkProfile &p = spec2000(GetParam());
    const TraceGenerator gen(p, 23, kBase);
    for (InstSeq i = 0; i < 20000; ++i) {
        const MicroOp op = gen.at(i);
        EXPECT_EQ(op.seq, i);
        if (isMemOp(op.op)) {
            EXPECT_GT(op.numSrcInt, 0u) << "mem op needs a base register";
            EXPECT_NE(op.effAddr, 0u);
        }
        if (isControlOp(op.op)) {
            EXPECT_TRUE(op.target != 0 || !op.taken);
        }
        if (op.op == OpClass::FpAdd || op.op == OpClass::FpMul ||
            op.op == OpClass::FpDiv) {
            EXPECT_TRUE(op.dstIsFp);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllSpec2000, GeneratorAllPrograms,
                         ::testing::ValuesIn(spec2000Names()));

} // namespace
} // namespace rat::trace
