/**
 * @file
 * Unit tests for the BBV-style phase profiler (trace/phase.hh):
 * determinism, weight accounting, clamping, and the degenerate cases
 * sampled simulation relies on (single window, single phase).
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "trace/generator.hh"
#include "trace/phase.hh"
#include "trace/profile.hh"

namespace rat::trace {
namespace {

/** The Simulator's stream recipe for a (seed, programs) workload. */
std::vector<std::unique_ptr<TraceGenerator>>
makeStreams(const std::vector<std::string> &programs,
            std::uint64_t seed = 1)
{
    std::vector<std::unique_ptr<TraceGenerator>> gens;
    for (std::size_t i = 0; i < programs.size(); ++i) {
        gens.push_back(std::make_unique<TraceGenerator>(
            spec2000(programs[i]),
            hashCombine(seed, hashCombine(i + 1, 0x7261747321ULL)),
            (static_cast<Addr>(i) + 1) << 40));
    }
    return gens;
}

std::vector<const TraceSource *>
views(const std::vector<std::unique_ptr<TraceGenerator>> &gens)
{
    std::vector<const TraceSource *> v;
    for (const auto &g : gens)
        v.push_back(g.get());
    return v;
}

PhaseProfile
profileOf(const std::vector<std::string> &programs, InstSeq start,
          const PhaseConfig &cfg)
{
    const auto gens = makeStreams(programs);
    return profilePhases(views(gens), start, cfg);
}

TEST(Phase, WeightsCoverEveryWindow)
{
    PhaseConfig cfg;
    cfg.window = 1024;
    cfg.spanWindows = 48;
    cfg.phases = 4;
    const PhaseProfile p = profileOf({"art", "gzip"}, 100000, cfg);

    ASSERT_FALSE(p.samples.empty());
    ASSERT_LE(p.samples.size(), 4u);
    EXPECT_EQ(p.window, 1024u);
    EXPECT_EQ(p.spanWindows, 48u);
    EXPECT_EQ(p.totalWeight(), 48u);
    EXPECT_EQ(p.assignment.size(), 48u);

    // Samples are strictly ascending by window index and in range; the
    // assignment references exactly the surviving samples.
    for (std::size_t i = 1; i < p.samples.size(); ++i)
        EXPECT_LT(p.samples[i - 1].windowIndex, p.samples[i].windowIndex);
    std::vector<std::uint64_t> population(p.samples.size(), 0);
    for (const unsigned cluster : p.assignment) {
        ASSERT_LT(cluster, p.samples.size());
        ++population[cluster];
    }
    for (std::size_t i = 0; i < p.samples.size(); ++i) {
        EXPECT_LT(p.samples[i].windowIndex, 48u);
        EXPECT_EQ(p.samples[i].weight, population[i]);
        // The representative belongs to its own cluster.
        EXPECT_EQ(p.assignment[p.samples[i].windowIndex],
                  static_cast<unsigned>(i));
    }
}

TEST(Phase, DeterministicAcrossCalls)
{
    PhaseConfig cfg;
    cfg.window = 2048;
    cfg.spanWindows = 32;
    cfg.phases = 6;
    const PhaseProfile a = profileOf({"swim", "mgrid"}, 50000, cfg);
    const PhaseProfile b = profileOf({"swim", "mgrid"}, 50000, cfg);

    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].windowIndex, b.samples[i].windowIndex);
        EXPECT_EQ(a.samples[i].weight, b.samples[i].weight);
    }
    EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Phase, SensitiveToStartAndSeed)
{
    PhaseConfig cfg;
    cfg.window = 2048;
    cfg.spanWindows = 32;
    cfg.phases = 4;
    const auto gens1 = makeStreams({"art", "mcf"}, 1);
    const auto gens2 = makeStreams({"art", "mcf"}, 2);
    const PhaseProfile a = profilePhases(views(gens1), 100000, cfg);
    const PhaseProfile b = profilePhases(views(gens1), 200000, cfg);
    const PhaseProfile c = profilePhases(views(gens2), 100000, cfg);

    // Distinct spans / seeds should not produce the identical
    // clustering (weights + representatives + assignment all equal).
    const auto same = [](const PhaseProfile &x, const PhaseProfile &y) {
        if (x.samples.size() != y.samples.size())
            return false;
        for (std::size_t i = 0; i < x.samples.size(); ++i) {
            if (x.samples[i].windowIndex != y.samples[i].windowIndex ||
                x.samples[i].weight != y.samples[i].weight)
                return false;
        }
        return x.assignment == y.assignment;
    };
    EXPECT_FALSE(same(a, b) && same(a, c));
}

TEST(Phase, SinglePhaseCollapsesToOneSample)
{
    PhaseConfig cfg;
    cfg.window = 2048;
    cfg.spanWindows = 16;
    cfg.phases = 1;
    const PhaseProfile p = profileOf({"art", "gzip"}, 100000, cfg);

    ASSERT_EQ(p.samples.size(), 1u);
    EXPECT_EQ(p.samples[0].weight, 16u);
    for (const unsigned cluster : p.assignment)
        EXPECT_EQ(cluster, 0u);
}

TEST(Phase, SingleWindowDegenerates)
{
    PhaseConfig cfg;
    cfg.window = 1024;
    cfg.spanWindows = 1;
    cfg.phases = 4; // clamped to the single window
    const PhaseProfile p = profileOf({"mcf"}, 0, cfg);

    ASSERT_EQ(p.samples.size(), 1u);
    EXPECT_EQ(p.samples[0].windowIndex, 0u);
    EXPECT_EQ(p.samples[0].weight, 1u);
}

TEST(Phase, MorePhasesThanWindowsClamps)
{
    PhaseConfig cfg;
    cfg.window = 512;
    cfg.spanWindows = 3;
    cfg.phases = 16;
    const PhaseProfile p = profileOf({"gzip"}, 1000, cfg);

    ASSERT_LE(p.samples.size(), 3u);
    ASSERT_GE(p.samples.size(), 1u);
    EXPECT_EQ(p.totalWeight(), 3u);
}

} // namespace
} // namespace rat::trace
