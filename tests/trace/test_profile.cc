/** @file Unit tests for the SPEC2000 profile registry. */

#include <gtest/gtest.h>

#include "trace/profile.hh"

namespace rat::trace {
namespace {

TEST(Profile, KnownProgramsResolve)
{
    EXPECT_EQ(spec2000("mcf").name, "mcf");
    EXPECT_EQ(spec2000("gzip").name, "gzip");
    EXPECT_EQ(spec2000("art").name, "art");
}

TEST(Profile, AllTable2ProgramsPresent)
{
    const char *needed[] = {
        "ammp", "applu",  "apsi",   "art",    "bzip2",  "crafty",
        "eon",  "equake", "fma3d",  "galgel", "gap",    "gcc",
        "gzip", "lucas",  "mcf",    "mesa",   "mgrid",  "parser",
        "perl", "swim",   "twolf",  "vortex", "vpr",    "wupwise",
    };
    for (const char *name : needed)
        EXPECT_TRUE(isSpec2000(name)) << name;
    EXPECT_EQ(spec2000Names().size(), std::size(needed));
}

TEST(ProfileDeathTest, UnknownProgramIsFatal)
{
    EXPECT_EXIT(spec2000("doom3"), ::testing::ExitedWithCode(1),
                "unknown SPEC2000 profile");
}

TEST(Profile, MixFractionsAreSane)
{
    for (const auto &name : spec2000Names()) {
        const BenchmarkProfile &p = spec2000(name);
        const double sum = p.fLoad + p.fStore + p.fBranch + p.fCall +
                           p.fReturn + p.fFpAdd + p.fFpMul + p.fFpDiv +
                           p.fIntMul + p.fIntDiv + p.fSync;
        EXPECT_GT(p.fLoad, 0.0) << name;
        EXPECT_GT(p.fBranch, 0.0) << name;
        EXPECT_LE(sum, 1.0) << name;
        EXPECT_GE(1.0 - sum, 0.05) << name << " needs some ALU work";
    }
}

TEST(Profile, AddressMixtureIsSane)
{
    for (const auto &name : spec2000Names()) {
        const BenchmarkProfile &p = spec2000(name);
        EXPECT_LE(p.pHot + p.pWarm + p.pStream, 1.0) << name;
        EXPECT_GT(p.hotBytes, 0u) << name;
        EXPECT_GT(p.coldBytes, p.warmBytes) << name;
    }
}

TEST(Profile, MemClassProgramsAreMemoryHeavy)
{
    // Pointer-chasers must have a chase period; streamers a stream share.
    for (const char *name : {"mcf", "twolf", "vpr", "parser"})
        EXPECT_GT(spec2000(name).chasePeriod, 0u) << name;
    for (const char *name : {"swim", "art", "applu", "lucas"})
        EXPECT_GT(spec2000(name).pStream, 0.2) << name;
}

TEST(Profile, IlpClassProgramsAreCacheFriendly)
{
    for (const char *name : {"gzip", "eon", "crafty", "mesa"}) {
        const BenchmarkProfile &p = spec2000(name);
        EXPECT_EQ(p.chasePeriod, 0u) << name;
        EXPECT_GT(p.pHot, 0.9) << name;
    }
}

} // namespace
} // namespace rat::trace
